//! The receive-side NIC engine (§IV-A).
//!
//! "When an RDMA receive completes at the receiver, a completion
//! notification is generated and stored in an RDMA completion queue.
//! Incoming messages are staged into bounce buffers in NIC memory."
//!
//! [`RecvNic::poll`] drains the wire into bounce buffers and appends
//! completion entries; [`RecvNic::take_block`] hands the matching service up
//! to `N` consecutive completions — the paper's scheme of letting DPA thread
//! *i* wait on completion *i*, *i + N*, … maps onto lane *i* of each block.

use crate::bounce::{BounceId, BouncePool};
use crate::fault::{WireFaultStats, WireFaults};
use crate::obs::ServiceMetrics;
use crate::rdma::{MessageHeader, QueuePair, RdmaError, SackBlocks, WirePacket};
use mpi_matching::MsgHandle;
use otm_base::{FaultPlan, MatchError, ReliabilityMode};
use std::collections::{BTreeMap, VecDeque};

/// Default per-QP capacity of the out-of-order staging buffer (selective
/// repeat). Sized to hold a full sender window so a single early drop never
/// forces discards; overflow degrades that packet to the go-back-N discard.
pub const DEFAULT_STAGING_CAPACITY: usize = 64;

/// A completion-queue entry: one arrived message staged in NIC memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The message header (envelope, inline hashes, protocol descriptor).
    pub header: MessageHeader,
    /// Where the inline bytes were staged.
    pub bounce: BounceId,
    /// Monotone per-NIC message handle (arrival order).
    pub msg: MsgHandle,
}

/// Errors surfaced by the receive path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NicError {
    /// Transport failure.
    Rdma(RdmaError),
    /// NIC memory exhausted while staging (bounce pool full).
    Staging(MatchError),
}

impl std::fmt::Display for NicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NicError::Rdma(e) => write!(f, "transport: {e}"),
            NicError::Staging(e) => write!(f, "staging: {e}"),
        }
    }
}

impl std::error::Error for NicError {}

/// Counters of the reliability receive side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RxStats {
    /// Sequenced packets discarded because their sequence number was
    /// already accepted or already staged (retransmit overlap or wire
    /// duplication).
    pub duplicates: u64,
    /// Sequenced packets discarded because they arrived ahead of the next
    /// expected sequence number (under go-back-N: every out-of-order
    /// arrival; under selective repeat: only staging-buffer overflow).
    pub gaps: u64,
    /// Out-of-order sequenced packets staged for later in-order delivery
    /// (selective repeat only).
    pub staged_out_of_order: u64,
    /// Out-of-order packets discarded because the staging buffer was full
    /// (a subset of `gaps`; selective repeat only).
    pub stage_overflow: u64,
    /// Cumulative acknowledgements sent back to peers.
    pub acks_sent: u64,
    /// Accepted packets parked in the cross-QP total-order gate because an
    /// earlier global sequence number had not been released yet.
    pub gate_parked: u64,
    /// Packets the total-order gate released to the completion queue (every
    /// gated packet is parked then released, so `gate_released` counts all
    /// gated deliveries; `gate_parked` counts how many had to wait).
    pub gate_released: u64,
}

/// The receive-side NIC: wire → bounce buffers → completion queue.
///
/// A NIC can terminate several queue pairs (one per remote peer in a
/// multi-node job); their completions merge into the one CQ in poll order.
///
/// Packets stamped with a reliability sequence number (sent through a
/// [`crate::reliable::ReliableSender`]) pass a per-QP acceptance check
/// governed by the configured [`ReliabilityMode`]. Under go-back-N only the
/// next expected sequence number is staged; duplicates and gaps are
/// discarded. Under selective repeat (the default) out-of-order packets are
/// held in a bounded per-QP staging buffer and delivered the moment the
/// hole fills, and the cumulative acks advertise the staged ranges as SACK
/// blocks so the sender retransmits only the holes. In both modes delivery
/// to the completion queue is strictly in sequence order, so the CQ — and
/// the monotone [`MsgHandle`]s it assigns — are identical to a fault-free
/// run's, no matter what a [`WireFaults`] layer did to the wire.
/// Unsequenced packets keep the legacy pass-through behavior.
#[derive(Debug)]
pub struct RecvNic {
    qps: Vec<QueuePair>,
    pool: BouncePool,
    cq: VecDeque<Completion>,
    next_msg: u64,
    /// A packet already pulled off its queue pair whose staging failed
    /// (bounce pool exhausted). Retried first on the next poll so no
    /// message is ever dropped; holding it preserves per-QP FIFO order
    /// because the failing poll returns immediately. A sequenced held
    /// packet has already passed the acceptance check, so the retry goes
    /// straight to staging.
    held: Option<WirePacket>,
    /// Fault interpreter wrapping delivery, if a plan was installed.
    faults: Option<WireFaults>,
    /// Per-QP next expected sequence number.
    expected: Vec<u64>,
    /// Per-QP flag: sequenced traffic arrived since the last ack.
    ack_due: Vec<bool>,
    /// Per-QP out-of-order staging buffer (selective repeat). Keys are
    /// sequence numbers strictly above `expected`; drained in order the
    /// moment the hole fills. A staging failure while draining leaves the
    /// packet keyed here and retries next poll, so nothing is dropped.
    staging: Vec<BTreeMap<u64, WirePacket>>,
    /// How the receive side repairs out-of-order arrivals.
    mode: ReliabilityMode,
    /// Per-QP staging-buffer bound.
    staging_capacity: usize,
    /// Whether the cross-QP total-order gate is enabled (see
    /// [`RecvNic::enable_total_order`]).
    total_order: bool,
    /// The total-order gate: accepted packets carrying a global sequence
    /// number park here until every earlier `gseq` has been released to the
    /// completion queue. Naturally bounded by the sum of the peers' send
    /// windows plus the per-QP staging buffers — a sender whose packets are
    /// parked stops receiving ack progress on *other* packets only when its
    /// own window fills, so the gate never grows past what the per-QP
    /// reliability layer already admits.
    gate: BTreeMap<u64, WirePacket>,
    /// The next global sequence number the gate releases.
    next_gseq: u64,
    rx_stats: RxStats,
    metrics: Option<ServiceMetrics>,
}

impl RecvNic {
    /// Creates a receive engine over one queue pair with the given staging
    /// pool, in the default [`ReliabilityMode`].
    pub fn new(qp: QueuePair, pool: BouncePool) -> Self {
        RecvNic {
            qps: vec![qp],
            pool,
            cq: VecDeque::new(),
            next_msg: 0,
            held: None,
            faults: None,
            expected: vec![0],
            ack_due: vec![false],
            staging: vec![BTreeMap::new()],
            mode: ReliabilityMode::default(),
            staging_capacity: DEFAULT_STAGING_CAPACITY,
            total_order: false,
            gate: BTreeMap::new(),
            next_gseq: 0,
            rx_stats: RxStats::default(),
            metrics: None,
        }
    }

    /// Enables cross-QP total-order delivery: accepted packets stamped with
    /// a global sequence number ([`WirePacket::with_gseq`]) are released to
    /// the completion queue strictly in that order, no matter which QP they
    /// arrived on or how the wire interleaved them. Packets without a
    /// `gseq` bypass the gate. The per-QP reliability acceptance still runs
    /// first (and its acks cover parked packets), so enabling the gate
    /// changes delivery *order* across QPs, never delivery *reliability*.
    /// Enable before sequenced traffic starts.
    pub fn enable_total_order(&mut self) {
        self.total_order = true;
    }

    /// Whether the cross-QP total-order gate is enabled.
    pub fn total_order(&self) -> bool {
        self.total_order
    }

    /// Packets currently parked in the total-order gate (diagnostics).
    pub fn gate_parked_len(&self) -> usize {
        self.gate.len()
    }

    /// The next global sequence number the total-order gate will release
    /// (diagnostics; equals the number of gated packets delivered so far).
    pub fn next_gseq(&self) -> u64 {
        self.next_gseq
    }

    /// Selects how this receiver repairs out-of-order sequenced arrivals.
    /// Switch modes before sequenced traffic starts — a mid-stream switch
    /// to go-back-N strands any already-staged packets.
    pub fn set_reliability_mode(&mut self, mode: ReliabilityMode) {
        debug_assert!(
            self.staging.iter().all(BTreeMap::is_empty),
            "switch reliability modes before sequenced traffic starts"
        );
        self.mode = mode;
    }

    /// The configured reliability mode.
    pub fn reliability_mode(&self) -> ReliabilityMode {
        self.mode
    }

    /// Overrides the per-QP out-of-order staging bound (selective repeat).
    /// A zero capacity disables staging, degrading to go-back-N discards.
    pub fn set_staging_capacity(&mut self, capacity: usize) {
        self.staging_capacity = capacity;
    }

    /// Installs a fault plan on the delivery path. Sequenced packets are
    /// dropped/duplicated/reordered/delayed per the plan; the go-back-N
    /// protocol repairs the damage before anything reaches the completion
    /// queue.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        let mut faults = WireFaults::new(plan);
        if let Some(m) = &self.metrics {
            faults.attach_metrics(m.clone());
        }
        self.faults = Some(faults);
    }

    /// Attaches a metrics handle so reliability events (discarded
    /// duplicates, gaps) and injected wire faults show up in a registry
    /// snapshot.
    pub fn attach_metrics(&mut self, metrics: ServiceMetrics) {
        if let Some(f) = self.faults.as_mut() {
            f.attach_metrics(metrics.clone());
        }
        self.metrics = Some(metrics);
    }

    /// Terminates an additional queue pair on this NIC (another peer).
    pub fn add_qp(&mut self, qp: QueuePair) {
        self.qps.push(qp);
        self.expected.push(0);
        self.ack_due.push(false);
        self.staging.push(BTreeMap::new());
    }

    /// Number of queue pairs terminated here.
    pub fn qp_count(&self) -> usize {
        self.qps.len()
    }

    /// Drains every packet currently on the wire into bounce buffers,
    /// generating completions. Returns how many arrived.
    pub fn poll(&mut self) -> Result<usize, NicError> {
        if let Some(f) = self.faults.as_mut() {
            f.tick();
        }
        let mut n = 0;
        // Retry the packet a previous poll could not stage.
        if let Some(packet) = self.held.take() {
            match self.stage_packet(packet) {
                Ok(()) => n += 1,
                Err((packet, e)) => {
                    self.held = Some(packet);
                    self.send_due_acks();
                    return Err(e);
                }
            }
        }
        // Resume a total-order gate drain a previous poll's bounce-pool
        // exhaustion cut short (the failing packet stayed parked).
        if self.total_order {
            match self.drain_gate() {
                Ok(k) => n += k,
                Err(e) => {
                    self.send_due_acks();
                    return Err(e);
                }
            }
        }
        // Release held-back (reordered/delayed) packets that are now due.
        while let Some((qp, packet)) = self.faults.as_mut().and_then(WireFaults::pop_due) {
            match self.accept_packet(qp, packet) {
                Ok(k) => n += k,
                Err(e) => {
                    self.send_due_acks();
                    return Err(e);
                }
            }
        }
        for i in 0..self.qps.len() {
            loop {
                match self.qps[i].try_recv().map_err(NicError::Rdma)? {
                    None => break,
                    Some(packet) => {
                        let deliveries = match self.faults.as_mut() {
                            Some(f) => f.admit(i, packet),
                            None => vec![packet],
                        };
                        for packet in deliveries {
                            match self.accept_packet(i, packet) {
                                Ok(k) => n += k,
                                Err(e) => {
                                    // Any extra copy lost with this early
                                    // return could only be a duplicate of
                                    // the now-held packet, so nothing
                                    // unique is dropped.
                                    self.send_due_acks();
                                    return Err(e);
                                }
                            }
                        }
                    }
                }
            }
        }
        // Deliver staged out-of-order packets whose holes filled this poll.
        match self.drain_staged() {
            Ok(k) => n += k,
            Err(e) => {
                self.send_due_acks();
                return Err(e);
            }
        }
        self.send_due_acks();
        Ok(n)
    }

    /// Runs the reliability acceptance check on one delivered packet and
    /// stages it if accepted. Returns how many completions were generated:
    /// `0` when the packet was discarded (stray ack, duplicate,
    /// out-of-order gap) or parked in the staging buffer, `1` for a direct
    /// acceptance, more when an in-order arrival filled a hole and its
    /// QP's staged run drained behind it — eager draining frees staging
    /// capacity for later packets arriving in the same poll.
    fn accept_packet(&mut self, qp: usize, packet: WirePacket) -> Result<usize, NicError> {
        if packet.is_ack() {
            // Acks are consumed by the sender half; one arriving here
            // (e.g. on a shared endpoint) is transport noise, not a
            // message.
            return Ok(0);
        }
        let sequenced = packet.seq.is_some();
        if let Some(seq) = packet.seq {
            // Any sequenced arrival — accepted or not — owes the peer a
            // fresh cumulative ack, so retransmits re-ack too.
            self.ack_due[qp] = true;
            let expected = self.expected[qp];
            if seq < expected {
                self.rx_stats.duplicates += 1;
                if let Some(m) = &self.metrics {
                    m.count_rx_duplicate();
                }
                return Ok(0);
            }
            if seq > expected {
                self.accept_out_of_order(qp, seq, packet);
                return Ok(0);
            }
            self.expected[qp] = expected + 1;
            // A retransmit can race its own staged copy: the in-order copy
            // wins and the staged one becomes a duplicate.
            if self.staging[qp].remove(&seq).is_some() {
                self.rx_stats.duplicates += 1;
                if let Some(m) = &self.metrics {
                    m.count_rx_duplicate();
                }
            }
        }
        match self.deliver_packet(packet) {
            Ok(k) => {
                if sequenced {
                    Ok(k + self.drain_staged_qp(qp)?)
                } else {
                    Ok(k)
                }
            }
            Err((Some(packet), e)) => {
                self.held = Some(packet);
                Err(e)
            }
            Err((None, e)) => Err(e),
        }
    }

    /// Routes one packet that passed its QP's reliability acceptance to the
    /// completion queue: directly when the total-order gate is off or the
    /// packet carries no global sequence number, through the gate
    /// otherwise. Returns how many completions were generated (a parked
    /// packet generates none now; releasing it — possibly along with a run
    /// of successors — generates them later). On a bounce-pool failure the
    /// packet travels back (`Some`) for the caller to re-hold or re-stage,
    /// unless it is safely parked in the gate (`None`: the failure is the
    /// gate head's, which stays parked and is retried next poll).
    #[allow(clippy::result_large_err)] // internal: the packet must travel back
    fn deliver_packet(
        &mut self,
        packet: WirePacket,
    ) -> Result<usize, (Option<WirePacket>, NicError)> {
        if self.total_order {
            if let Some(gseq) = packet.gseq {
                if gseq < self.next_gseq || self.gate.contains_key(&gseq) {
                    // Per-QP acceptance is exactly-once, so a gate-level
                    // duplicate means two packets shared a global sequence
                    // number (a sender-side numbering bug); discarding the
                    // later copy keeps delivery exactly-once per gseq.
                    self.rx_stats.duplicates += 1;
                    if let Some(m) = &self.metrics {
                        m.count_rx_duplicate();
                    }
                    return Ok(0);
                }
                self.gate.insert(gseq, packet);
                if gseq != self.next_gseq {
                    self.rx_stats.gate_parked += 1;
                }
                return self.drain_gate().map_err(|e| (None, e));
            }
        }
        match self.stage_packet(packet) {
            Ok(()) => Ok(1),
            Err((packet, e)) => Err((Some(packet), e)),
        }
    }

    /// Releases gated packets whose global-order predecessors have all been
    /// delivered, strictly in `gseq` order. A bounce-pool failure leaves
    /// the head parked (keyed by its unchanged global sequence number) and
    /// surfaces the error; the next poll resumes the drain.
    fn drain_gate(&mut self) -> Result<usize, NicError> {
        let mut n = 0;
        while let Some(packet) = self.gate.remove(&self.next_gseq) {
            match self.stage_packet(packet) {
                Ok(()) => {
                    self.next_gseq += 1;
                    self.rx_stats.gate_released += 1;
                    n += 1;
                }
                Err((packet, e)) => {
                    self.gate.insert(self.next_gseq, packet);
                    return Err(e);
                }
            }
        }
        Ok(n)
    }

    /// Handles a sequenced packet above the expected counter: discarded
    /// under go-back-N, staged (bounded) under selective repeat. Never
    /// generates a completion directly.
    fn accept_out_of_order(&mut self, qp: usize, seq: u64, packet: WirePacket) {
        if self.mode == ReliabilityMode::SelectiveRepeat {
            if self.staging[qp].contains_key(&seq) {
                self.rx_stats.duplicates += 1;
                if let Some(m) = &self.metrics {
                    m.count_rx_duplicate();
                }
                return;
            }
            if self.staging[qp].len() < self.staging_capacity {
                self.staging[qp].insert(seq, packet);
                self.rx_stats.staged_out_of_order += 1;
                if let Some(m) = &self.metrics {
                    m.count_rx_staged();
                }
                return;
            }
            self.rx_stats.stage_overflow += 1;
            if let Some(m) = &self.metrics {
                m.count_rx_stage_overflow();
            }
        }
        self.rx_stats.gaps += 1;
        if let Some(m) = &self.metrics {
            m.count_rx_gap();
        }
    }

    /// Delivers staged packets whose hole has filled, strictly in sequence
    /// order per QP. A bounce-pool failure leaves the packet staged (keyed
    /// by its unchanged sequence number) and surfaces the error; the next
    /// poll resumes the drain, so nothing is dropped.
    fn drain_staged(&mut self) -> Result<usize, NicError> {
        let mut n = 0;
        for qp in 0..self.qps.len() {
            n += self.drain_staged_qp(qp)?;
        }
        Ok(n)
    }

    /// The per-QP half of [`RecvNic::drain_staged`].
    fn drain_staged_qp(&mut self, qp: usize) -> Result<usize, NicError> {
        let mut n = 0;
        let mut next = self.expected[qp];
        while let Some(packet) = self.staging[qp].remove(&next) {
            match self.deliver_packet(packet) {
                Ok(k) => {
                    next += 1;
                    self.expected[qp] = next;
                    self.ack_due[qp] = true;
                    n += k;
                }
                Err((Some(packet), e)) => {
                    self.staging[qp].insert(next, packet);
                    return Err(e);
                }
                Err((None, e)) => {
                    // The packet itself is parked in the gate (accepted at
                    // the per-QP layer, so the ack must cover it); the
                    // error is the gate head's bounce failure, retried on
                    // the next poll.
                    self.expected[qp] = next + 1;
                    self.ack_due[qp] = true;
                    return Err(e);
                }
            }
        }
        Ok(n)
    }

    /// Sends one cumulative ack on every QP that saw sequenced traffic
    /// since the last ack, advertising any staged out-of-order runs as
    /// SACK blocks. Best-effort: a disconnected peer cannot use the ack
    /// anyway.
    fn send_due_acks(&mut self) {
        for i in 0..self.qps.len() {
            if self.ack_due[i] {
                self.ack_due[i] = false;
                let sack = Self::sack_of(&self.staging[i]);
                crate::reliable::send_sack_best_effort(&self.qps[i], self.expected[i], sack);
                self.rx_stats.acks_sent += 1;
            }
        }
    }

    /// Summarizes a staging buffer's contiguous runs as SACK blocks
    /// (bounded by [`crate::rdma::MAX_SACK_BLOCKS`]; lower runs win since
    /// they unblock the cumulative edge soonest).
    fn sack_of(staging: &BTreeMap<u64, WirePacket>) -> SackBlocks {
        let mut sack = SackBlocks::empty();
        let mut run: Option<(u64, u64)> = None;
        for &seq in staging.keys() {
            run = match run {
                Some((start, end)) if seq == end => Some((start, end + 1)),
                Some((start, end)) => {
                    if !sack.push(start, end) {
                        return sack;
                    }
                    Some((seq, seq + 1))
                }
                None => Some((seq, seq + 1)),
            };
        }
        if let Some((start, end)) = run {
            sack.push(start, end);
        }
        sack
    }

    /// Stages one packet into a bounce buffer, or hands it back on failure.
    #[allow(clippy::result_large_err)] // internal: the packet must travel back
    fn stage_packet(&mut self, packet: WirePacket) -> Result<(), (WirePacket, NicError)> {
        match self.pool.stage(&packet.inline) {
            Ok(bounce) => {
                let msg = MsgHandle(self.next_msg);
                self.next_msg += 1;
                self.cq.push_back(Completion {
                    header: packet.header,
                    bounce,
                    msg,
                });
                Ok(())
            }
            Err(e) => Err((packet, NicError::Staging(e))),
        }
    }

    /// Pops up to `max` consecutive completions — one matching block.
    pub fn take_block(&mut self, max: usize) -> Vec<Completion> {
        let n = self.cq.len().min(max);
        self.cq.drain(..n).collect()
    }

    /// Completions waiting to be matched.
    pub fn cq_len(&self) -> usize {
        self.cq.len()
    }

    /// Bounce buffers currently holding staged messages.
    pub fn bounce_in_use(&self) -> usize {
        self.pool.in_use()
    }

    /// Reads the staged bytes of a completion.
    pub fn staged(&self, bounce: BounceId) -> &[u8] {
        self.pool.data(bounce)
    }

    /// Returns a bounce buffer after the protocol stage copied it out.
    pub fn release(&mut self, bounce: BounceId) {
        self.pool.release(bounce);
    }

    /// The first endpoint, e.g. for sending acknowledgements back on a
    /// two-node setup.
    pub fn qp(&self) -> &QueuePair {
        &self.qps[0]
    }

    /// Reliability receive counters (discarded duplicates/gaps, staged
    /// out-of-order packets, acks sent).
    pub fn rx_stats(&self) -> RxStats {
        self.rx_stats
    }

    /// Out-of-order packets currently staged on queue pair `qp`
    /// (diagnostics).
    pub fn staged_out_of_order_len(&self, qp: usize) -> usize {
        self.staging[qp].len()
    }

    /// What the installed fault plan injected so far, if one is active.
    pub fn wire_fault_stats(&self) -> Option<WireFaultStats> {
        self.faults.as_ref().map(WireFaults::stats)
    }

    /// The next expected sequence number on queue pair `qp` (diagnostics).
    pub fn expected_seq(&self, qp: usize) -> u64 {
        self.expected[qp]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdma::{connected_pair, eager_packet};
    use otm_base::{Envelope, Rank, Tag};

    fn nic_pair(buffers: usize) -> (QueuePair, RecvNic) {
        let (a, b) = connected_pair();
        (a, RecvNic::new(b, BouncePool::new(buffers, 64)))
    }

    fn env(tag: u32) -> Envelope {
        Envelope::world(Rank(0), Tag(tag))
    }

    #[test]
    fn poll_stages_and_completes_in_arrival_order() {
        let (tx, mut nic) = nic_pair(4);
        tx.send(eager_packet(env(1), vec![1])).unwrap();
        tx.send(eager_packet(env(2), vec![2])).unwrap();
        assert_eq!(nic.poll().unwrap(), 2);
        let block = nic.take_block(8);
        assert_eq!(block.len(), 2);
        assert_eq!(block[0].msg, MsgHandle(0));
        assert_eq!(block[1].msg, MsgHandle(1));
        assert_eq!(nic.staged(block[0].bounce), &[1]);
        assert_eq!(nic.staged(block[1].bounce), &[2]);
    }

    #[test]
    fn take_block_respects_block_size() {
        let (tx, mut nic) = nic_pair(8);
        for i in 0..5 {
            tx.send(eager_packet(env(i), vec![])).unwrap();
        }
        nic.poll().unwrap();
        assert_eq!(nic.take_block(3).len(), 3);
        assert_eq!(nic.cq_len(), 2);
        assert_eq!(nic.take_block(3).len(), 2);
    }

    #[test]
    fn msg_handles_keep_increasing_across_polls() {
        let (tx, mut nic) = nic_pair(8);
        tx.send(eager_packet(env(0), vec![])).unwrap();
        nic.poll().unwrap();
        let first = nic.take_block(1)[0];
        nic.release(first.bounce);
        tx.send(eager_packet(env(1), vec![])).unwrap();
        nic.poll().unwrap();
        let second = nic.take_block(1)[0];
        assert_eq!(first.msg, MsgHandle(0));
        assert_eq!(second.msg, MsgHandle(1));
    }

    #[test]
    fn staging_exhaustion_is_reported_and_the_packet_survives() {
        let (tx, mut nic) = nic_pair(1);
        tx.send(eager_packet(env(0), vec![10])).unwrap();
        tx.send(eager_packet(env(1), vec![11])).unwrap();
        assert!(matches!(nic.poll(), Err(NicError::Staging(_))));
        // The first message staged before exhaustion; releasing its buffer
        // lets the held second packet stage on the next poll — nothing is
        // dropped and order is preserved.
        let first = nic.take_block(1)[0];
        assert_eq!(nic.staged(first.bounce), &[10]);
        nic.release(first.bounce);
        assert_eq!(nic.poll().unwrap(), 1);
        let second = nic.take_block(1)[0];
        assert_eq!(nic.staged(second.bounce), &[11]);
        assert_eq!(second.msg, MsgHandle(1));
    }

    #[test]
    fn released_buffers_allow_further_traffic() {
        let (tx, mut nic) = nic_pair(1);
        tx.send(eager_packet(env(0), vec![7])).unwrap();
        nic.poll().unwrap();
        let c = nic.take_block(1)[0];
        nic.release(c.bounce);
        tx.send(eager_packet(env(1), vec![8])).unwrap();
        assert_eq!(nic.poll().unwrap(), 1);
    }

    #[test]
    fn sequenced_packets_are_accepted_in_order_and_acked() {
        let (tx, mut nic) = nic_pair(4);
        tx.send(eager_packet(env(0), vec![0]).with_seq(0)).unwrap();
        tx.send(eager_packet(env(1), vec![1]).with_seq(1)).unwrap();
        assert_eq!(nic.poll().unwrap(), 2);
        assert_eq!(nic.expected_seq(0), 2);
        // One cumulative ack for the poll, carrying the next expected seq.
        let ack = tx.try_recv().unwrap().expect("ack sent");
        assert!(ack.is_ack());
        match ack.header.kind {
            crate::rdma::PayloadKind::Ack { cumulative, sack } => {
                assert_eq!(cumulative, 2);
                assert!(sack.is_empty(), "nothing staged, nothing advertised");
            }
            _ => unreachable!(),
        }
        assert_eq!(nic.rx_stats().acks_sent, 1);
    }

    #[test]
    fn duplicate_and_gap_sequences_are_discarded() {
        let (tx, mut nic) = nic_pair(8);
        nic.set_reliability_mode(ReliabilityMode::GoBackN);
        tx.send(eager_packet(env(0), vec![0]).with_seq(0)).unwrap();
        tx.send(eager_packet(env(0), vec![0]).with_seq(0)).unwrap(); // dup
        tx.send(eager_packet(env(5), vec![5]).with_seq(5)).unwrap(); // gap
        tx.send(eager_packet(env(1), vec![1]).with_seq(1)).unwrap();
        assert_eq!(nic.poll().unwrap(), 2, "only seqs 0 and 1 staged");
        let stats = nic.rx_stats();
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.gaps, 1);
        assert_eq!(stats.staged_out_of_order, 0, "go-back-N never stages");
        let block = nic.take_block(8);
        assert_eq!(block.len(), 2);
        assert_eq!(nic.staged(block[0].bounce), &[0]);
        assert_eq!(nic.staged(block[1].bounce), &[1]);
    }

    #[test]
    fn retransmitted_window_fills_the_gap_exactly_once() {
        let (tx, mut nic) = nic_pair(8);
        nic.set_reliability_mode(ReliabilityMode::GoBackN);
        // First transmission: seq 1 lost on the (conceptual) wire.
        tx.send(eager_packet(env(0), vec![0]).with_seq(0)).unwrap();
        tx.send(eager_packet(env(2), vec![2]).with_seq(2)).unwrap();
        nic.poll().unwrap();
        // Go-back-N resend of the unacked window [1, 2].
        tx.send(eager_packet(env(1), vec![1]).with_seq(1)).unwrap();
        tx.send(eager_packet(env(2), vec![2]).with_seq(2)).unwrap();
        nic.poll().unwrap();
        let block = nic.take_block(8);
        let staged: Vec<&[u8]> = block.iter().map(|c| nic.staged(c.bounce)).collect();
        assert_eq!(staged, vec![&[0u8][..], &[1], &[2]], "in order, no dups");
        assert_eq!(nic.rx_stats().gaps, 1);
        assert_eq!(nic.rx_stats().duplicates, 0);
    }

    #[test]
    fn selective_repeat_stages_and_delivers_on_hole_fill() {
        let (tx, mut nic) = nic_pair(8);
        assert_eq!(nic.reliability_mode(), ReliabilityMode::SelectiveRepeat);
        tx.send(eager_packet(env(0), vec![0]).with_seq(0)).unwrap();
        tx.send(eager_packet(env(2), vec![2]).with_seq(2)).unwrap();
        tx.send(eager_packet(env(3), vec![3]).with_seq(3)).unwrap();
        assert_eq!(nic.poll().unwrap(), 1, "only seq 0 delivered; 2,3 staged");
        assert_eq!(nic.staged_out_of_order_len(0), 2);
        assert_eq!(nic.rx_stats().staged_out_of_order, 2);
        assert_eq!(nic.rx_stats().gaps, 0, "staging is not a discard");
        // The ack advertises the staged run [2, 4) above cumulative 1.
        let ack = tx.try_recv().unwrap().expect("ack sent");
        match ack.header.kind {
            crate::rdma::PayloadKind::Ack { cumulative, sack } => {
                assert_eq!(cumulative, 1);
                assert_eq!(sack.iter().collect::<Vec<_>>(), vec![(2, 4)]);
            }
            _ => unreachable!(),
        }
        // Filling the hole releases the whole staged run, in order.
        tx.send(eager_packet(env(1), vec![1]).with_seq(1)).unwrap();
        assert_eq!(nic.poll().unwrap(), 3);
        assert_eq!(nic.staged_out_of_order_len(0), 0);
        assert_eq!(nic.expected_seq(0), 4);
        let block = nic.take_block(8);
        let bytes: Vec<u8> = block.iter().map(|c| nic.staged(c.bounce)[0]).collect();
        assert_eq!(bytes, vec![0, 1, 2, 3], "delivery is strictly in order");
        assert_eq!(block[0].msg, MsgHandle(0), "handles match a clean run");
    }

    #[test]
    fn selective_repeat_discards_duplicates_of_staged_packets() {
        let (tx, mut nic) = nic_pair(8);
        tx.send(eager_packet(env(2), vec![2]).with_seq(2)).unwrap();
        tx.send(eager_packet(env(2), vec![2]).with_seq(2)).unwrap(); // dup
        assert_eq!(nic.poll().unwrap(), 0);
        assert_eq!(nic.rx_stats().staged_out_of_order, 1);
        assert_eq!(nic.rx_stats().duplicates, 1, "second copy is a dup");
        // An in-order retransmit sweep racing its own staged copy delivers
        // exactly once.
        tx.send(eager_packet(env(0), vec![0]).with_seq(0)).unwrap();
        tx.send(eager_packet(env(1), vec![1]).with_seq(1)).unwrap();
        tx.send(eager_packet(env(2), vec![2]).with_seq(2)).unwrap();
        assert_eq!(nic.poll().unwrap(), 3);
        assert_eq!(nic.rx_stats().duplicates, 2, "staged copy superseded");
        let block = nic.take_block(8);
        let bytes: Vec<u8> = block.iter().map(|c| nic.staged(c.bounce)[0]).collect();
        assert_eq!(bytes, vec![0, 1, 2]);
    }

    #[test]
    fn staging_overflow_degrades_to_goback_n_discard() {
        let (tx, mut nic) = nic_pair(8);
        nic.set_staging_capacity(2);
        tx.send(eager_packet(env(1), vec![1]).with_seq(1)).unwrap();
        tx.send(eager_packet(env(2), vec![2]).with_seq(2)).unwrap();
        tx.send(eager_packet(env(3), vec![3]).with_seq(3)).unwrap(); // overflow
        assert_eq!(nic.poll().unwrap(), 0);
        let stats = nic.rx_stats();
        assert_eq!(stats.staged_out_of_order, 2);
        assert_eq!(stats.stage_overflow, 1);
        assert_eq!(stats.gaps, 1, "the overflowed packet counts as a gap");
        // The retransmit fills the hole and re-sends the overflowed seq.
        tx.send(eager_packet(env(0), vec![0]).with_seq(0)).unwrap();
        tx.send(eager_packet(env(3), vec![3]).with_seq(3)).unwrap();
        assert_eq!(nic.poll().unwrap(), 4);
        let block = nic.take_block(8);
        let bytes: Vec<u8> = block.iter().map(|c| nic.staged(c.bounce)[0]).collect();
        assert_eq!(bytes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sack_blocks_summarize_disjoint_staged_runs() {
        let (tx, mut nic) = nic_pair(16);
        for seq in [2u64, 3, 5, 8, 9] {
            tx.send(eager_packet(env(seq as u32), vec![seq as u8]).with_seq(seq))
                .unwrap();
        }
        assert_eq!(nic.poll().unwrap(), 0);
        let ack = tx.try_recv().unwrap().expect("ack sent");
        match ack.header.kind {
            crate::rdma::PayloadKind::Ack { cumulative, sack } => {
                assert_eq!(cumulative, 0);
                assert_eq!(
                    sack.iter().collect::<Vec<_>>(),
                    vec![(2, 4), (5, 6), (8, 10)]
                );
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn staged_drain_survives_bounce_exhaustion() {
        // Pool of 2: the hole-filling packet and the first staged packet
        // stage, the second staged packet must wait without being lost.
        let (tx, mut nic) = nic_pair(2);
        tx.send(eager_packet(env(1), vec![1]).with_seq(1)).unwrap();
        tx.send(eager_packet(env(2), vec![2]).with_seq(2)).unwrap();
        assert_eq!(nic.poll().unwrap(), 0, "both staged out of order");
        tx.send(eager_packet(env(0), vec![0]).with_seq(0)).unwrap();
        assert!(matches!(nic.poll(), Err(NicError::Staging(_))));
        assert_eq!(nic.staged_out_of_order_len(0), 1, "seq 2 still staged");
        // Releasing bounce buffers lets the drain resume in order.
        for c in nic.take_block(8) {
            nic.release(c.bounce);
        }
        assert_eq!(nic.poll().unwrap(), 1);
        let block = nic.take_block(8);
        assert_eq!(nic.staged(block[0].bounce), &[2]);
        assert_eq!(block[0].msg, MsgHandle(2), "handle order preserved");
    }

    #[test]
    fn stray_acks_never_become_completions() {
        let (tx, mut nic) = nic_pair(4);
        tx.send(crate::rdma::ack_packet(3)).unwrap();
        assert_eq!(nic.poll().unwrap(), 0);
        assert_eq!(nic.cq_len(), 0);
    }

    #[test]
    fn unsequenced_traffic_keeps_legacy_passthrough_semantics() {
        let (tx, mut nic) = nic_pair(4);
        tx.send(eager_packet(env(0), vec![9])).unwrap();
        assert_eq!(nic.poll().unwrap(), 1);
        assert_eq!(nic.expected_seq(0), 0, "no sequence state touched");
        assert_eq!(
            tx.try_recv().unwrap(),
            None,
            "no ack owed for unsequenced traffic"
        );
    }

    /// Drives `n` messages through a faulty wire in the given mode and
    /// asserts exactly-once in-order delivery.
    fn faulty_wire_roundtrip(
        mode: ReliabilityMode,
    ) -> (RxStats, crate::reliable::ReliabilityStats) {
        use crate::reliable::ReliableSender;
        use otm_base::FaultPlan;
        let (a, b) = connected_pair();
        let mut nic = RecvNic::new(b, BouncePool::new(64, 64));
        nic.set_reliability_mode(mode);
        nic.set_faults(
            FaultPlan::new(0x5eed)
                .with_drop_permille(150)
                .with_duplicate_permille(150)
                .with_reorder_permille(150)
                .with_reorder_window(4),
        );
        let mut sender = ReliableSender::with_limits(a, 4, 32).with_mode(mode);
        let n = 50u32;
        for i in 0..n {
            sender.send(eager_packet(env(i), vec![i as u8])).unwrap();
        }
        let mut staged = Vec::new();
        for _ in 0..4096 {
            sender.poll().expect("sender within budget");
            nic.poll().unwrap();
            for c in nic.take_block(64) {
                staged.push(nic.staged(c.bounce)[0]);
                let b = c.bounce;
                nic.release(b);
            }
            if staged.len() == n as usize && sender.unacked() == 0 {
                break;
            }
        }
        assert_eq!(
            staged,
            (0..n as u8).collect::<Vec<_>>(),
            "exactly-once, in-order delivery under drop+dup+reorder ({mode:?})"
        );
        let wire = nic.wire_fault_stats().unwrap();
        assert!(wire.total() > 0, "the plan must actually have injected");
        (nic.rx_stats(), sender.stats())
    }

    #[test]
    fn total_order_gate_releases_cross_qp_packets_in_global_order() {
        let (tx_a, rx_a) = connected_pair();
        let (tx_b, rx_b) = connected_pair();
        let mut nic = RecvNic::new(rx_a, BouncePool::new(8, 64));
        nic.add_qp(rx_b);
        nic.enable_total_order();
        // QP 0 carries gseqs {1, 2}, QP 1 carries {0, 3}; per-QP seqs are
        // independent. Global order must come out 0, 1, 2, 3.
        tx_a.send(eager_packet(env(1), vec![1]).with_seq(0).with_gseq(1))
            .unwrap();
        tx_a.send(eager_packet(env(2), vec![2]).with_seq(1).with_gseq(2))
            .unwrap();
        tx_b.send(eager_packet(env(0), vec![0]).with_seq(0).with_gseq(0))
            .unwrap();
        tx_b.send(eager_packet(env(3), vec![3]).with_seq(1).with_gseq(3))
            .unwrap();
        assert_eq!(nic.poll().unwrap(), 4);
        let block = nic.take_block(8);
        let bytes: Vec<u8> = block.iter().map(|c| nic.staged(c.bounce)[0]).collect();
        assert_eq!(bytes, vec![0, 1, 2, 3], "global order across QPs");
        assert_eq!(block[0].msg, MsgHandle(0), "handles follow global order");
        assert_eq!(nic.next_gseq(), 4);
        assert_eq!(nic.gate_parked_len(), 0);
        let stats = nic.rx_stats();
        assert_eq!(stats.gate_released, 4);
        assert!(
            stats.gate_parked >= 2,
            "QP 0's packets arrived before gseq 0 and had to wait: {stats:?}"
        );
    }

    #[test]
    fn total_order_gate_holds_packets_until_the_global_hole_fills() {
        let (tx_a, rx_a) = connected_pair();
        let (tx_b, rx_b) = connected_pair();
        let mut nic = RecvNic::new(rx_a, BouncePool::new(8, 64));
        nic.add_qp(rx_b);
        nic.enable_total_order();
        tx_a.send(eager_packet(env(1), vec![1]).with_seq(0).with_gseq(1))
            .unwrap();
        assert_eq!(nic.poll().unwrap(), 0, "gseq 1 parked behind missing 0");
        assert_eq!(nic.gate_parked_len(), 1);
        assert_eq!(nic.expected_seq(0), 1, "per-QP acceptance already ran");
        // The parked packet is acked at the per-QP layer: a retransmitted
        // copy is discarded as a duplicate, not double-delivered.
        tx_a.send(eager_packet(env(1), vec![1]).with_seq(0).with_gseq(1))
            .unwrap();
        assert_eq!(nic.poll().unwrap(), 0);
        assert_eq!(nic.rx_stats().duplicates, 1);
        tx_b.send(eager_packet(env(0), vec![0]).with_seq(0).with_gseq(0))
            .unwrap();
        assert_eq!(nic.poll().unwrap(), 2, "hole filled, run released");
        let block = nic.take_block(8);
        let bytes: Vec<u8> = block.iter().map(|c| nic.staged(c.bounce)[0]).collect();
        assert_eq!(bytes, vec![0, 1]);
    }

    #[test]
    fn total_order_gate_drain_survives_bounce_exhaustion() {
        let (tx_a, rx_a) = connected_pair();
        let (tx_b, rx_b) = connected_pair();
        let mut nic = RecvNic::new(rx_a, BouncePool::new(1, 64));
        nic.add_qp(rx_b);
        nic.enable_total_order();
        tx_a.send(eager_packet(env(0), vec![0]).with_seq(0).with_gseq(0))
            .unwrap();
        tx_b.send(eager_packet(env(1), vec![1]).with_seq(0).with_gseq(1))
            .unwrap();
        // gseq 0 stages into the single bounce buffer; gseq 1's release
        // fails and must stay parked, not dropped.
        assert!(matches!(nic.poll(), Err(NicError::Staging(_))));
        assert_eq!(nic.gate_parked_len(), 1);
        let first = nic.take_block(1)[0];
        assert_eq!(nic.staged(first.bounce), &[0]);
        nic.release(first.bounce);
        assert_eq!(nic.poll().unwrap(), 1, "gate drain resumes next poll");
        let second = nic.take_block(1)[0];
        assert_eq!(nic.staged(second.bounce), &[1]);
        assert_eq!(second.msg, MsgHandle(1), "handle order preserved");
    }

    #[test]
    fn ungated_packets_bypass_an_enabled_gate() {
        let (tx, mut nic) = nic_pair(4);
        nic.enable_total_order();
        tx.send(eager_packet(env(0), vec![9])).unwrap();
        assert_eq!(nic.poll().unwrap(), 1, "no gseq, no gating");
        assert_eq!(nic.next_gseq(), 0);
        assert_eq!(nic.rx_stats().gate_released, 0);
    }

    /// Two senders over a hostile wire into one total-order NIC: delivery
    /// must come out exactly once in global order, whatever the faults did.
    fn faulty_two_qp_total_order(mode: ReliabilityMode) -> RxStats {
        use crate::reliable::ReliableSender;
        use otm_base::FaultPlan;
        let (tx_a, rx_a) = connected_pair();
        let (tx_b, rx_b) = connected_pair();
        let mut nic = RecvNic::new(rx_a, BouncePool::new(64, 64));
        nic.add_qp(rx_b);
        nic.set_reliability_mode(mode);
        nic.enable_total_order();
        nic.set_faults(
            FaultPlan::new(0x707a1)
                .with_drop_permille(120)
                .with_duplicate_permille(120)
                .with_reorder_permille(120)
                .with_reorder_window(4),
        );
        let mut senders = [
            ReliableSender::with_limits(tx_a, 4, 32).with_mode(mode),
            ReliableSender::with_limits(tx_b, 4, 32).with_mode(mode),
        ];
        // Global stream 0..40 alternates between the two QPs; the
        // ReliableSender stamps each QP's per-QP seq itself.
        let n = 40u64;
        for g in 0..n {
            let qp = (g % 2) as usize;
            let pkt = eager_packet(env(g as u32), vec![g as u8]).with_gseq(g);
            while !senders[qp].can_send() {
                senders[qp].poll().unwrap();
                nic.poll().unwrap();
            }
            senders[qp].send(pkt).unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..4096 {
            for s in &mut senders {
                s.poll().unwrap();
            }
            nic.poll().unwrap();
            for c in nic.take_block(64) {
                got.push(nic.staged(c.bounce)[0]);
                let b = c.bounce;
                nic.release(b);
            }
            if got.len() == n as usize && senders.iter().all(|s| s.unacked() == 0) {
                break;
            }
        }
        assert_eq!(
            got,
            (0..n as u8).collect::<Vec<_>>(),
            "exactly-once global-order delivery across QPs ({mode:?})"
        );
        nic.rx_stats()
    }

    #[test]
    fn faulty_two_qp_total_order_holds_under_goback_n() {
        faulty_two_qp_total_order(ReliabilityMode::GoBackN);
    }

    #[test]
    fn faulty_two_qp_total_order_holds_under_selective_repeat() {
        let stats = faulty_two_qp_total_order(ReliabilityMode::SelectiveRepeat);
        assert!(stats.gate_parked > 0, "cross-QP skew must have parked");
    }

    #[test]
    fn faulty_wire_with_goback_n_sender_delivers_exactly_once_in_order() {
        let (rx, _tx) = faulty_wire_roundtrip(ReliabilityMode::GoBackN);
        assert_eq!(rx.staged_out_of_order, 0, "go-back-N never stages");
    }

    #[test]
    fn faulty_wire_with_selective_repeat_delivers_exactly_once_in_order() {
        let (rx, tx) = faulty_wire_roundtrip(ReliabilityMode::SelectiveRepeat);
        assert!(rx.staged_out_of_order > 0, "reorders must have staged");
        // The identical fault schedule costs strictly fewer retransmits
        // under selective repeat than under go-back-N.
        let (_, gbn) = faulty_wire_roundtrip(ReliabilityMode::GoBackN);
        assert!(
            tx.retransmits < gbn.retransmits,
            "selective repeat ({}) must beat go-back-N ({}) on the same seed",
            tx.retransmits,
            gbn.retransmits
        );
    }
}
