//! The receive-side NIC engine (§IV-A).
//!
//! "When an RDMA receive completes at the receiver, a completion
//! notification is generated and stored in an RDMA completion queue.
//! Incoming messages are staged into bounce buffers in NIC memory."
//!
//! [`RecvNic::poll`] drains the wire into bounce buffers and appends
//! completion entries; [`RecvNic::take_block`] hands the matching service up
//! to `N` consecutive completions — the paper's scheme of letting DPA thread
//! *i* wait on completion *i*, *i + N*, … maps onto lane *i* of each block.

use crate::bounce::{BounceId, BouncePool};
use crate::rdma::{MessageHeader, QueuePair, RdmaError, WirePacket};
use mpi_matching::MsgHandle;
use otm_base::MatchError;
use std::collections::VecDeque;

/// A completion-queue entry: one arrived message staged in NIC memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The message header (envelope, inline hashes, protocol descriptor).
    pub header: MessageHeader,
    /// Where the inline bytes were staged.
    pub bounce: BounceId,
    /// Monotone per-NIC message handle (arrival order).
    pub msg: MsgHandle,
}

/// Errors surfaced by the receive path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NicError {
    /// Transport failure.
    Rdma(RdmaError),
    /// NIC memory exhausted while staging (bounce pool full).
    Staging(MatchError),
}

impl std::fmt::Display for NicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NicError::Rdma(e) => write!(f, "transport: {e}"),
            NicError::Staging(e) => write!(f, "staging: {e}"),
        }
    }
}

impl std::error::Error for NicError {}

/// The receive-side NIC: wire → bounce buffers → completion queue.
///
/// A NIC can terminate several queue pairs (one per remote peer in a
/// multi-node job); their completions merge into the one CQ in poll order.
#[derive(Debug)]
pub struct RecvNic {
    qps: Vec<QueuePair>,
    pool: BouncePool,
    cq: VecDeque<Completion>,
    next_msg: u64,
    /// A packet already pulled off its queue pair whose staging failed
    /// (bounce pool exhausted). Retried first on the next poll so no
    /// message is ever dropped; holding it preserves per-QP FIFO order
    /// because the failing poll returns immediately.
    held: Option<WirePacket>,
}

impl RecvNic {
    /// Creates a receive engine over one queue pair with the given staging
    /// pool.
    pub fn new(qp: QueuePair, pool: BouncePool) -> Self {
        RecvNic {
            qps: vec![qp],
            pool,
            cq: VecDeque::new(),
            next_msg: 0,
            held: None,
        }
    }

    /// Terminates an additional queue pair on this NIC (another peer).
    pub fn add_qp(&mut self, qp: QueuePair) {
        self.qps.push(qp);
    }

    /// Number of queue pairs terminated here.
    pub fn qp_count(&self) -> usize {
        self.qps.len()
    }

    /// Drains every packet currently on the wire into bounce buffers,
    /// generating completions. Returns how many arrived.
    pub fn poll(&mut self) -> Result<usize, NicError> {
        let mut n = 0;
        // Retry the packet a previous poll could not stage.
        if let Some(packet) = self.held.take() {
            match self.stage_packet(packet) {
                Ok(()) => n += 1,
                Err((packet, e)) => {
                    self.held = Some(packet);
                    return Err(e);
                }
            }
        }
        for i in 0..self.qps.len() {
            loop {
                match self.qps[i].try_recv().map_err(NicError::Rdma)? {
                    None => break,
                    Some(packet) => match self.stage_packet(packet) {
                        Ok(()) => n += 1,
                        Err((packet, e)) => {
                            self.held = Some(packet);
                            return Err(e);
                        }
                    },
                }
            }
        }
        Ok(n)
    }

    /// Stages one packet into a bounce buffer, or hands it back on failure.
    #[allow(clippy::result_large_err)] // internal: the packet must travel back
    fn stage_packet(&mut self, packet: WirePacket) -> Result<(), (WirePacket, NicError)> {
        match self.pool.stage(&packet.inline) {
            Ok(bounce) => {
                let msg = MsgHandle(self.next_msg);
                self.next_msg += 1;
                self.cq.push_back(Completion {
                    header: packet.header,
                    bounce,
                    msg,
                });
                Ok(())
            }
            Err(e) => Err((packet, NicError::Staging(e))),
        }
    }

    /// Pops up to `max` consecutive completions — one matching block.
    pub fn take_block(&mut self, max: usize) -> Vec<Completion> {
        let n = self.cq.len().min(max);
        self.cq.drain(..n).collect()
    }

    /// Completions waiting to be matched.
    pub fn cq_len(&self) -> usize {
        self.cq.len()
    }

    /// Bounce buffers currently holding staged messages.
    pub fn bounce_in_use(&self) -> usize {
        self.pool.in_use()
    }

    /// Reads the staged bytes of a completion.
    pub fn staged(&self, bounce: BounceId) -> &[u8] {
        self.pool.data(bounce)
    }

    /// Returns a bounce buffer after the protocol stage copied it out.
    pub fn release(&mut self, bounce: BounceId) {
        self.pool.release(bounce);
    }

    /// The first endpoint, e.g. for sending acknowledgements back on a
    /// two-node setup.
    pub fn qp(&self) -> &QueuePair {
        &self.qps[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdma::{connected_pair, eager_packet};
    use otm_base::{Envelope, Rank, Tag};

    fn nic_pair(buffers: usize) -> (QueuePair, RecvNic) {
        let (a, b) = connected_pair();
        (a, RecvNic::new(b, BouncePool::new(buffers, 64)))
    }

    fn env(tag: u32) -> Envelope {
        Envelope::world(Rank(0), Tag(tag))
    }

    #[test]
    fn poll_stages_and_completes_in_arrival_order() {
        let (tx, mut nic) = nic_pair(4);
        tx.send(eager_packet(env(1), vec![1])).unwrap();
        tx.send(eager_packet(env(2), vec![2])).unwrap();
        assert_eq!(nic.poll().unwrap(), 2);
        let block = nic.take_block(8);
        assert_eq!(block.len(), 2);
        assert_eq!(block[0].msg, MsgHandle(0));
        assert_eq!(block[1].msg, MsgHandle(1));
        assert_eq!(nic.staged(block[0].bounce), &[1]);
        assert_eq!(nic.staged(block[1].bounce), &[2]);
    }

    #[test]
    fn take_block_respects_block_size() {
        let (tx, mut nic) = nic_pair(8);
        for i in 0..5 {
            tx.send(eager_packet(env(i), vec![])).unwrap();
        }
        nic.poll().unwrap();
        assert_eq!(nic.take_block(3).len(), 3);
        assert_eq!(nic.cq_len(), 2);
        assert_eq!(nic.take_block(3).len(), 2);
    }

    #[test]
    fn msg_handles_keep_increasing_across_polls() {
        let (tx, mut nic) = nic_pair(8);
        tx.send(eager_packet(env(0), vec![])).unwrap();
        nic.poll().unwrap();
        let first = nic.take_block(1)[0];
        nic.release(first.bounce);
        tx.send(eager_packet(env(1), vec![])).unwrap();
        nic.poll().unwrap();
        let second = nic.take_block(1)[0];
        assert_eq!(first.msg, MsgHandle(0));
        assert_eq!(second.msg, MsgHandle(1));
    }

    #[test]
    fn staging_exhaustion_is_reported_and_the_packet_survives() {
        let (tx, mut nic) = nic_pair(1);
        tx.send(eager_packet(env(0), vec![10])).unwrap();
        tx.send(eager_packet(env(1), vec![11])).unwrap();
        assert!(matches!(nic.poll(), Err(NicError::Staging(_))));
        // The first message staged before exhaustion; releasing its buffer
        // lets the held second packet stage on the next poll — nothing is
        // dropped and order is preserved.
        let first = nic.take_block(1)[0];
        assert_eq!(nic.staged(first.bounce), &[10]);
        nic.release(first.bounce);
        assert_eq!(nic.poll().unwrap(), 1);
        let second = nic.take_block(1)[0];
        assert_eq!(nic.staged(second.bounce), &[11]);
        assert_eq!(second.msg, MsgHandle(1));
    }

    #[test]
    fn released_buffers_allow_further_traffic() {
        let (tx, mut nic) = nic_pair(1);
        tx.send(eager_packet(env(0), vec![7])).unwrap();
        nic.poll().unwrap();
        let c = nic.take_block(1)[0];
        nic.release(c.bounce);
        tx.send(eager_packet(env(1), vec![8])).unwrap();
        assert_eq!(nic.poll().unwrap(), 1);
    }
}
