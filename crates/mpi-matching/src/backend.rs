//! The pluggable matching-backend interface used by the SmartNIC simulator.
//!
//! The paper's service layer (§IV-E) treats matching as a component behind
//! the DPA command queues: receives are posted through a command path,
//! messages are matched in blocks, and when device resources run out the
//! whole matching state migrates to host software. [`MatchingBackend`]
//! captures exactly that contract so the simulator, the trace replayer and
//! the figure harnesses can swap engines — the parallel optimistic engine,
//! the host-CPU baselines, or the no-matching RDMA ceiling — without
//! enum-dispatching over a closed set.
//!
//! Unlike [`Matcher`], which models a *sequential*
//! engine for oracle comparisons, this trait speaks the service's language:
//! block-granular arrival ([`MatchingBackend::arrive_block`]), an explicit
//! offload-fallback drain ([`MatchingBackend::drain_for_fallback`]), and
//! statistics *merging* (offloaded engines keep their own counters and fold
//! them into a host-side [`MatchStats`] on demand).
//!
//! # Selecting a backend
//!
//! Every backend is constructed concretely and then used uniformly through
//! the trait. The optimistic engine (`otm::OtmEngine`) implements the trait
//! in its own crate; the host-side engines and the RDMA ceiling live here:
//!
//! ```
//! use mpi_matching::backend::{MatchingBackend, RdmaNoOp};
//! use mpi_matching::binned::BinnedMatcher;
//! use mpi_matching::traditional::TraditionalMatcher;
//! use mpi_matching::{MsgHandle, RecvHandle};
//! use otm_base::{Envelope, Rank, ReceivePattern, Tag};
//!
//! let mut backends: Vec<Box<dyn MatchingBackend>> = vec![
//!     Box::new(TraditionalMatcher::new()), // "MPI-CPU"
//!     Box::new(BinnedMatcher::new(64)),    // "Binned-CPU"
//!     Box::new(RdmaNoOp::new()),           // "RDMA-CPU" (no matching)
//! ];
//! for backend in &mut backends {
//!     backend.post(ReceivePattern::exact(Rank(0), Tag(1)), RecvHandle(0))?;
//!     let deliveries =
//!         backend.arrive_block(&[(Envelope::world(Rank(0), Tag(1)), MsgHandle(0))])?;
//!     assert_eq!(deliveries[0].matched(), Some(RecvHandle(0)));
//! }
//! # Ok::<(), otm_base::MatchError>(())
//! ```

#![deny(missing_docs)]

use crate::binned::BinnedMatcher;
use crate::matcher::{ArriveResult, Matcher, MsgHandle, PostResult, RecvHandle};
use crate::rank_based::RankBasedMatcher;
use crate::stats::MatchStats;
use crate::traditional::TraditionalMatcher;
use otm_base::{Envelope, MatchError, ReceivePattern};
use std::any::Any;

/// One host-to-backend command, mirroring the DPA QP command set (§IV-E).
///
/// Backends with an internal submission queue (the offloaded engine) accept
/// these through [`MatchingBackend::submit_command`] and apply them at
/// [`MatchingBackend::drain_commands`]; a fallback snapshot carries the
/// commands a backend accepted but never applied, so the offload→software
/// migration is loss-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingCommand {
    /// Post a receive (the `post` command path).
    Post {
        /// The receive's matching pattern.
        pattern: ReceivePattern,
        /// The caller's handle for the receive.
        handle: RecvHandle,
    },
    /// Deliver one incoming message (the arrival path; queue-draining
    /// backends batch consecutive arrivals into blocks).
    Arrival {
        /// The message's envelope.
        env: Envelope,
        /// The caller's handle for the message.
        msg: MsgHandle,
    },
}

/// The result of applying one [`PendingCommand`], in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandOutcome {
    /// Outcome of a [`PendingCommand::Post`]. Carries the submitted receive
    /// handle so callers can attribute the result without replaying the
    /// submission order — under cross-communicator packing the applied set
    /// is not necessarily a prefix of the submitted sequence when a drain
    /// stops early.
    Post {
        /// The handle the receive was submitted under.
        handle: RecvHandle,
        /// What posting it did (matched immediately or parked in the PRQ).
        result: PostResult,
    },
    /// Outcome of a [`PendingCommand::Arrival`].
    Delivery(BlockDelivery),
}

/// Everything one [`MatchingBackend::drain_commands`] call accomplished.
///
/// A drain is not all-or-nothing: commands apply one by one (arrivals in
/// blocks), and an error stops the drain mid-queue. The outcomes of the
/// commands that *did* apply are always reported — dropping them would lose
/// deliveries the caller must act on.
#[derive(Debug, Default)]
pub struct DrainReport {
    /// Outcome of every applied command. Outcomes appear in the order the
    /// commands were applied, which under cross-communicator packing is not
    /// necessarily the order they were submitted — each outcome therefore
    /// carries its own handle ([`CommandOutcome::Post`]) or delivery
    /// ([`CommandOutcome::Delivery`]) so the caller never has to replay the
    /// submission sequence to attribute a result.
    pub outcomes: Vec<CommandOutcome>,
    /// The error that stopped the drain early, if any. On a *retryable*
    /// error ([`MatchError::is_retryable`]: resource exhaustion) the
    /// failing command and everything queued behind it went back to the
    /// front of the queue, so a retry after remedying the error resumes
    /// exactly where this drain stopped. On a *terminal* error
    /// ([`MatchError::is_terminal`]: the engine is dead, or the command can
    /// never apply) nothing is requeued — the unapplied commands are
    /// surfaced in [`DrainReport::unapplied`] instead, so a retry loop
    /// terminates rather than spinning on the same error forever.
    pub error: Option<MatchError>,
    /// On a terminal error: the failing command and every command behind
    /// it (including commands still sitting in the queue), in submission
    /// order. Empty on success and on retryable errors. The caller owns
    /// these — typically by replaying them into a software matcher after a
    /// fallback migration.
    pub unapplied: Vec<PendingCommand>,
}

impl DrainReport {
    /// Whether the drain stopped on a terminal error (see
    /// [`DrainReport::error`]).
    pub fn is_terminal(&self) -> bool {
        self.error.as_ref().is_some_and(|e| e.is_terminal())
    }
}

/// Matching state drained from a backend for software fallback: the pending
/// receives (per-communicator post order), the waiting unexpected messages
/// (per-communicator arrival order), and the commands the backend accepted
/// into its submission queue but never applied (global submission order).
///
/// C1 only constrains order *within* a communicator, so replaying the
/// receives communicator-by-communicator into a software matcher preserves
/// MPI semantics. The `pending` commands replay *after* the drained state
/// (they are strictly younger than everything the backend applied), and —
/// unlike the state, which is mutually non-matching by construction — they
/// may legitimately produce matches during the replay.
///
/// ```
/// use mpi_matching::backend::{FallbackState, MatchingBackend};
/// use mpi_matching::traditional::TraditionalMatcher;
/// use mpi_matching::{MsgHandle, RecvHandle};
/// use otm_base::{Envelope, Rank, ReceivePattern, Tag};
///
/// let mut b: Box<dyn MatchingBackend> = Box::new(TraditionalMatcher::new());
/// b.post(ReceivePattern::exact(Rank(0), Tag(1)), RecvHandle(0))?;
/// b.arrive_block(&[(Envelope::world(Rank(9), Tag(9)), MsgHandle(0))])?;
///
/// let state: FallbackState = b.drain_for_fallback()?;
/// assert_eq!(state.receives.len(), 1);   // the still-pending receive
/// assert_eq!(state.unexpected.len(), 1); // the unmatched message
/// assert!(state.pending.is_empty());     // synchronous backend: no queue
/// assert_eq!(state.len(), 2);
/// # Ok::<(), otm_base::MatchError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FallbackState {
    /// Pending receives, per-communicator post order.
    pub receives: Vec<(ReceivePattern, RecvHandle)>,
    /// Waiting unexpected messages, per-communicator arrival order.
    pub unexpected: Vec<(Envelope, MsgHandle)>,
    /// Commands accepted but not yet applied, in submission order.
    pub pending: Vec<PendingCommand>,
}

impl FallbackState {
    /// A snapshot of applied matching state only, with no pending commands
    /// (the shape of backends that apply every operation synchronously).
    pub fn from_state(
        receives: Vec<(ReceivePattern, RecvHandle)>,
        unexpected: Vec<(Envelope, MsgHandle)>,
    ) -> Self {
        FallbackState {
            receives,
            unexpected,
            pending: Vec::new(),
        }
    }

    /// Total entries the snapshot carries (receives, messages, commands).
    pub fn len(&self) -> usize {
        self.receives.len() + self.unexpected.len() + self.pending.len()
    }

    /// Whether the snapshot carries nothing at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Outcome of matching one incoming message in a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockDelivery {
    /// The message matched a posted receive.
    Matched {
        /// The message's handle.
        msg: MsgHandle,
        /// The matched receive's handle.
        recv: RecvHandle,
    },
    /// No receive matched; the message was stored as unexpected.
    Unexpected {
        /// The message's handle.
        msg: MsgHandle,
    },
}

impl BlockDelivery {
    /// The matched receive handle, if any.
    pub fn matched(self) -> Option<RecvHandle> {
        match self {
            BlockDelivery::Matched { recv, .. } => Some(recv),
            BlockDelivery::Unexpected { .. } => None,
        }
    }

    /// The message handle.
    pub fn msg(self) -> MsgHandle {
        match self {
            BlockDelivery::Matched { msg, .. } | BlockDelivery::Unexpected { msg } => msg,
        }
    }
}

/// A matching engine as the simulator's service layer sees it (§IV-E).
///
/// Implementations must uphold the MPI matching constraints C1/C2 (see
/// [`Matcher`]); within one [`MatchingBackend::arrive_block`] call, messages
/// are matched in slice order (lane *i* is the *i*-th arrival) and the
/// deliveries come back in that same order.
///
/// The optional capabilities degrade gracefully through the defaults: a
/// plain host engine is a complete backend out of the box, refusing the
/// command-queue and offload-fallback paths it does not have —
///
/// ```
/// use mpi_matching::backend::{MatchingBackend, PendingCommand, RdmaNoOp};
/// use mpi_matching::{MsgHandle, RecvHandle};
/// use otm_base::{Envelope, Rank, ReceivePattern, Tag};
///
/// let mut b: Box<dyn MatchingBackend> = Box::new(RdmaNoOp::new());
/// // The synchronous paths always work...
/// b.post(ReceivePattern::exact(Rank(0), Tag(1)), RecvHandle(0))?;
/// let d = b.arrive_block(&[(Envelope::world(Rank(0), Tag(1)), MsgHandle(0))])?;
/// assert!(d[0].matched().is_some());
/// // ...while the device-only capabilities report themselves absent.
/// assert!(!b.supports_command_queue());
/// assert!(!b.wants_offload_fallback());
/// assert!(b
///     .submit_command(PendingCommand::Arrival {
///         env: Envelope::world(Rank(0), Tag(2)),
///         msg: MsgHandle(1),
///     })
///     .is_err());
/// # Ok::<(), otm_base::MatchError>(())
/// ```
pub trait MatchingBackend: Send {
    /// The label reports and Figure 8 use for this backend
    /// (e.g. `"Optimistic-DPA"`, `"MPI-CPU"`, `"RDMA-CPU"`).
    fn backend_name(&self) -> &'static str;

    /// The preferred arrival-block size. The service feeds
    /// [`MatchingBackend::arrive_block`] at most this many messages at a
    /// time. Sequential engines match one message per "block".
    fn block_size(&self) -> usize {
        1
    }

    /// Posts a receive — the host-to-device command path.
    fn post(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<PostResult, MatchError>;

    /// Matches a block of up to [`MatchingBackend::block_size`] incoming
    /// messages, in slice (= arrival) order.
    ///
    /// On error the block must be rejected atomically: no message of the
    /// block may have been half-applied, so the caller can migrate the
    /// intact state via [`MatchingBackend::drain_for_fallback`].
    fn arrive_block(
        &mut self,
        msgs: &[(Envelope, MsgHandle)],
    ) -> Result<Vec<BlockDelivery>, MatchError>;

    /// Non-destructive unexpected-queue probe (`MPI_Iprobe` semantics).
    fn probe(&self, pattern: &ReceivePattern) -> Option<MsgHandle>;

    /// Live posted receives.
    fn prq_len(&self) -> usize;

    /// Waiting unexpected messages.
    fn umq_len(&self) -> usize;

    /// Folds this backend's accumulated matching statistics into `into`.
    ///
    /// Offloaded engines translate their device-side counters; host engines
    /// merge their [`MatchStats`] verbatim.
    fn merge_stats(&self, into: &mut MatchStats);

    /// Whether resource-exhaustion errors ([`MatchError::ReceiveTableFull`],
    /// [`MatchError::UnexpectedStoreFull`]) from this backend signal that
    /// the service should migrate to software matching (§IV-E). Host
    /// backends are unbounded and never ask for fallback.
    fn wants_offload_fallback(&self) -> bool {
        false
    }

    /// Whether this backend accepts asynchronous commands through
    /// [`MatchingBackend::submit_command`] (the DPA command-queue path,
    /// §IV-E). Synchronous host backends do not.
    fn supports_command_queue(&self) -> bool {
        false
    }

    /// Enqueues one command for a later [`MatchingBackend::drain_commands`].
    ///
    /// The default refuses: only queue-capable backends
    /// ([`MatchingBackend::supports_command_queue`]) accept submissions.
    fn submit_command(&mut self, cmd: PendingCommand) -> Result<(), MatchError> {
        let _ = cmd;
        Err(MatchError::InvalidConfig(format!(
            "the {} backend has no command queue",
            self.backend_name()
        )))
    }

    /// Applies queued commands in submission order and reports their
    /// outcomes (see [`DrainReport`] for the partial-failure contract).
    ///
    /// The default refuses, mirroring [`MatchingBackend::submit_command`].
    fn drain_commands(&mut self) -> DrainReport {
        DrainReport {
            outcomes: Vec::new(),
            error: Some(MatchError::InvalidConfig(format!(
                "the {} backend has no command queue",
                self.backend_name()
            ))),
            unapplied: Vec::new(),
        }
    }

    /// Commands currently sitting in the submission queue. Zero for
    /// synchronous backends.
    fn pending_commands(&self) -> usize {
        0
    }

    /// Drains the complete matching state — applied receives and unexpected
    /// messages *plus* any commands still sitting in the submission queue —
    /// for migration to software tag matching, consuming the backend (the
    /// device resources are being given up). Nothing the backend ever
    /// accepted may be dropped: a fallback under load must be loss-free.
    ///
    /// The default refuses: only offload-capable backends support the
    /// drain, and the service never invokes it unless
    /// [`MatchingBackend::wants_offload_fallback`] said so.
    fn drain_for_fallback(self: Box<Self>) -> Result<FallbackState, MatchError> {
        Err(MatchError::InvalidConfig(format!(
            "the {} backend has no offload state to drain",
            self.backend_name()
        )))
    }

    /// The backend as [`Any`], for observability downcasts (e.g. the
    /// service reading the optimistic engine's device-side metrics).
    fn as_any(&self) -> &dyn Any;
}

/// Matches one block through a sequential [`Matcher`], one arrival at a
/// time. Shared by the host-CPU backend impls.
fn arrive_block_via_matcher<M: Matcher>(
    matcher: &mut M,
    msgs: &[(Envelope, MsgHandle)],
) -> Result<Vec<BlockDelivery>, MatchError> {
    msgs.iter()
        .map(|&(env, msg)| {
            Ok(match matcher.arrive(env, msg)? {
                ArriveResult::Matched(recv) => BlockDelivery::Matched { msg, recv },
                ArriveResult::Unexpected => BlockDelivery::Unexpected { msg },
            })
        })
        .collect()
}

impl MatchingBackend for TraditionalMatcher {
    fn backend_name(&self) -> &'static str {
        "MPI-CPU"
    }

    fn post(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<PostResult, MatchError> {
        Matcher::post(self, pattern, handle)
    }

    fn arrive_block(
        &mut self,
        msgs: &[(Envelope, MsgHandle)],
    ) -> Result<Vec<BlockDelivery>, MatchError> {
        arrive_block_via_matcher(self, msgs)
    }

    fn probe(&self, pattern: &ReceivePattern) -> Option<MsgHandle> {
        Matcher::probe(self, pattern)
    }

    fn prq_len(&self) -> usize {
        Matcher::prq_len(self)
    }

    fn umq_len(&self) -> usize {
        Matcher::umq_len(self)
    }

    fn merge_stats(&self, into: &mut MatchStats) {
        into.merge(Matcher::stats(self));
    }

    fn drain_for_fallback(self: Box<Self>) -> Result<FallbackState, MatchError> {
        Ok(self.snapshot_state())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl MatchingBackend for BinnedMatcher {
    fn backend_name(&self) -> &'static str {
        "Binned-CPU"
    }

    fn post(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<PostResult, MatchError> {
        Matcher::post(self, pattern, handle)
    }

    fn arrive_block(
        &mut self,
        msgs: &[(Envelope, MsgHandle)],
    ) -> Result<Vec<BlockDelivery>, MatchError> {
        arrive_block_via_matcher(self, msgs)
    }

    fn probe(&self, pattern: &ReceivePattern) -> Option<MsgHandle> {
        Matcher::probe(self, pattern)
    }

    fn prq_len(&self) -> usize {
        Matcher::prq_len(self)
    }

    fn umq_len(&self) -> usize {
        Matcher::umq_len(self)
    }

    fn merge_stats(&self, into: &mut MatchStats) {
        into.merge(Matcher::stats(self));
    }

    fn drain_for_fallback(self: Box<Self>) -> Result<FallbackState, MatchError> {
        Ok(self.snapshot_state())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl MatchingBackend for RankBasedMatcher {
    fn backend_name(&self) -> &'static str {
        "Rank-CPU"
    }

    fn post(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<PostResult, MatchError> {
        Matcher::post(self, pattern, handle)
    }

    fn arrive_block(
        &mut self,
        msgs: &[(Envelope, MsgHandle)],
    ) -> Result<Vec<BlockDelivery>, MatchError> {
        arrive_block_via_matcher(self, msgs)
    }

    fn probe(&self, pattern: &ReceivePattern) -> Option<MsgHandle> {
        Matcher::probe(self, pattern)
    }

    fn prq_len(&self) -> usize {
        Matcher::prq_len(self)
    }

    fn umq_len(&self) -> usize {
        Matcher::umq_len(self)
    }

    fn merge_stats(&self, into: &mut MatchStats) {
        into.merge(Matcher::stats(self));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The paper's **RDMA-CPU** baseline: no tag matching at all, every message
/// "matches" immediately — the transport ceiling of Figure 8.
///
/// The delivered receive handle is fabricated from the message handle, as
/// the real baseline would address the buffer directly from the packet.
#[derive(Debug, Clone, Copy, Default)]
pub struct RdmaNoOp;

impl RdmaNoOp {
    /// Creates the no-op backend.
    pub fn new() -> Self {
        RdmaNoOp
    }
}

impl MatchingBackend for RdmaNoOp {
    fn backend_name(&self) -> &'static str {
        "RDMA-CPU"
    }

    fn post(
        &mut self,
        _pattern: ReceivePattern,
        _handle: RecvHandle,
    ) -> Result<PostResult, MatchError> {
        Ok(PostResult::Posted)
    }

    fn arrive_block(
        &mut self,
        msgs: &[(Envelope, MsgHandle)],
    ) -> Result<Vec<BlockDelivery>, MatchError> {
        Ok(msgs
            .iter()
            .map(|&(_, msg)| BlockDelivery::Matched {
                msg,
                recv: RecvHandle(msg.0),
            })
            .collect())
    }

    fn probe(&self, _pattern: &ReceivePattern) -> Option<MsgHandle> {
        None
    }

    fn prq_len(&self) -> usize {
        0
    }

    fn umq_len(&self) -> usize {
        0
    }

    fn merge_stats(&self, _into: &mut MatchStats) {}

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_base::{Rank, Tag};

    fn env(src: u32, tag: u32) -> Envelope {
        Envelope::world(Rank(src), Tag(tag))
    }

    #[test]
    fn backend_labels_are_the_figure_labels() {
        let backends: Vec<Box<dyn MatchingBackend>> = vec![
            Box::new(TraditionalMatcher::new()),
            Box::new(BinnedMatcher::new(8)),
            Box::new(RankBasedMatcher::new()),
            Box::new(RdmaNoOp::new()),
        ];
        let names: Vec<_> = backends.iter().map(|b| b.backend_name()).collect();
        assert_eq!(names, vec!["MPI-CPU", "Binned-CPU", "Rank-CPU", "RDMA-CPU"]);
    }

    #[test]
    fn host_backends_match_through_the_block_interface() {
        let mut b: Box<dyn MatchingBackend> = Box::new(TraditionalMatcher::new());
        assert_eq!(b.block_size(), 1);
        b.post(ReceivePattern::exact(Rank(0), Tag(1)), RecvHandle(7))
            .unwrap();
        let d = b
            .arrive_block(&[(env(0, 1), MsgHandle(0)), (env(9, 9), MsgHandle(1))])
            .unwrap();
        assert_eq!(
            d[0],
            BlockDelivery::Matched {
                msg: MsgHandle(0),
                recv: RecvHandle(7)
            }
        );
        assert_eq!(d[1], BlockDelivery::Unexpected { msg: MsgHandle(1) });
        assert_eq!(b.umq_len(), 1);
        assert_eq!(b.probe(&ReceivePattern::any_any()), Some(MsgHandle(1)));
    }

    #[test]
    fn traditional_drain_preserves_both_queues_in_order() {
        let mut b: Box<dyn MatchingBackend> = Box::new(TraditionalMatcher::new());
        b.post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(0))
            .unwrap();
        b.post(ReceivePattern::exact(Rank(0), Tag(1)), RecvHandle(1))
            .unwrap();
        b.arrive_block(&[(env(5, 5), MsgHandle(0)), (env(6, 6), MsgHandle(1))])
            .unwrap();
        let state = b.drain_for_fallback().unwrap();
        assert_eq!(
            state.receives.iter().map(|&(_, h)| h).collect::<Vec<_>>(),
            vec![RecvHandle(0), RecvHandle(1)]
        );
        assert_eq!(
            state.unexpected.iter().map(|&(_, h)| h).collect::<Vec<_>>(),
            vec![MsgHandle(0), MsgHandle(1)]
        );
        assert!(state.pending.is_empty());
    }

    #[test]
    fn binned_drain_restores_post_and_arrival_order() {
        let mut b = BinnedMatcher::new(16);
        // Interleave binned and wildcard receives so the drain has to
        // re-serialize the two structures by post label.
        MatchingBackend::post(
            &mut b,
            ReceivePattern::exact(Rank(0), Tag(0)),
            RecvHandle(0),
        )
        .unwrap();
        MatchingBackend::post(&mut b, ReceivePattern::any_source(Tag(9)), RecvHandle(1)).unwrap();
        MatchingBackend::post(
            &mut b,
            ReceivePattern::exact(Rank(2), Tag(2)),
            RecvHandle(2),
        )
        .unwrap();
        b.arrive_block(&[(env(7, 7), MsgHandle(0)), (env(8, 8), MsgHandle(1))])
            .unwrap();
        let state = Box::new(b).drain_for_fallback().unwrap();
        assert_eq!(
            state.receives.iter().map(|&(_, h)| h).collect::<Vec<_>>(),
            vec![RecvHandle(0), RecvHandle(1), RecvHandle(2)]
        );
        assert_eq!(
            state.unexpected.iter().map(|&(_, h)| h).collect::<Vec<_>>(),
            vec![MsgHandle(0), MsgHandle(1)]
        );
        assert!(state.pending.is_empty());
    }

    #[test]
    fn synchronous_backends_refuse_command_submission() {
        let mut b: Box<dyn MatchingBackend> = Box::new(TraditionalMatcher::new());
        assert!(!b.supports_command_queue());
        assert_eq!(b.pending_commands(), 0);
        assert!(matches!(
            b.submit_command(PendingCommand::Post {
                pattern: ReceivePattern::any_any(),
                handle: RecvHandle(0),
            }),
            Err(MatchError::InvalidConfig(_))
        ));
        let report = b.drain_commands();
        assert!(report.outcomes.is_empty());
        assert!(report.is_terminal());
        assert!(report.unapplied.is_empty());
    }

    #[test]
    fn host_backends_never_request_offload_fallback() {
        let b: Box<dyn MatchingBackend> = Box::new(TraditionalMatcher::new());
        assert!(!b.wants_offload_fallback());
        let nb: Box<dyn MatchingBackend> = Box::new(RdmaNoOp::new());
        assert!(!nb.wants_offload_fallback());
    }

    #[test]
    fn drain_without_offload_state_is_refused() {
        let b: Box<dyn MatchingBackend> = Box::new(RankBasedMatcher::new());
        assert!(matches!(
            b.drain_for_fallback(),
            Err(MatchError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rdma_noop_fabricates_matches() {
        let mut b = RdmaNoOp::new();
        let d = b.arrive_block(&[(env(1, 1), MsgHandle(42))]).unwrap();
        assert_eq!(
            d,
            vec![BlockDelivery::Matched {
                msg: MsgHandle(42),
                recv: RecvHandle(42)
            }]
        );
        let mut stats = MatchStats::new();
        b.merge_stats(&mut stats);
        assert_eq!(stats.posted, 0);
    }

    #[test]
    fn merge_stats_folds_host_counters() {
        let mut b = TraditionalMatcher::new();
        MatchingBackend::post(
            &mut b,
            ReceivePattern::exact(Rank(0), Tag(1)),
            RecvHandle(0),
        )
        .unwrap();
        b.arrive_block(&[(env(0, 1), MsgHandle(0))]).unwrap();
        let mut stats = MatchStats::new();
        b.merge_stats(&mut stats);
        assert_eq!(stats.matched_on_arrival, 1);
        assert_eq!(stats.posted, 1);
    }

    #[test]
    fn as_any_supports_observability_downcasts() {
        let b: Box<dyn MatchingBackend> = Box::new(BinnedMatcher::new(4));
        let binned = b.as_any().downcast_ref::<BinnedMatcher>().unwrap();
        assert_eq!(binned.bins(), 4);
        assert!(b.as_any().downcast_ref::<TraditionalMatcher>().is_none());
    }
}
