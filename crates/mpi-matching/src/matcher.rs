//! The common interface implemented by every host-side matching engine.

use crate::stats::MatchStats;
use otm_base::{Envelope, MatchError, ReceivePattern};
use serde::{Deserialize, Serialize};

/// Opaque handle the caller associates with a posted receive.
///
/// Matching engines never interpret the handle; they hand it back when an
/// incoming message matches the receive. In a real MPI implementation it
/// would identify the receive request (and thereby the user buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RecvHandle(pub u64);

/// Opaque handle the caller associates with an incoming message.
///
/// Handed back when a later-posted receive matches the (by then unexpected)
/// message. In a real implementation it would locate the staged message data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgHandle(pub u64);

/// Outcome of posting a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PostResult {
    /// The receive matched a message already waiting in the unexpected
    /// message queue; the protocol handling stage can start immediately
    /// (Fig. 1a, steps 2a/3a).
    Matched(MsgHandle),
    /// No unexpected message matched; the receive is recorded in the posted
    /// receive queue (Fig. 1a, steps 2b/3b).
    Posted,
}

impl PostResult {
    /// The matched message handle, if any.
    #[inline]
    pub fn matched(self) -> Option<MsgHandle> {
        match self {
            PostResult::Matched(m) => Some(m),
            PostResult::Posted => None,
        }
    }
}

/// Outcome of delivering an incoming message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArriveResult {
    /// The message matched a posted receive, which is consumed (Fig. 1b,
    /// step 2b).
    Matched(RecvHandle),
    /// No posted receive matched; the message is stored in the unexpected
    /// message queue (Fig. 1b, steps 2a/3a).
    Unexpected,
}

impl ArriveResult {
    /// The matched receive handle, if any.
    #[inline]
    pub fn matched(self) -> Option<RecvHandle> {
        match self {
            ArriveResult::Matched(r) => Some(r),
            ArriveResult::Unexpected => None,
        }
    }
}

/// A sequential MPI tag-matching engine.
///
/// Implementations must uphold the MPI matching constraints:
///
/// * **C1 — order of posted receives.** If a message matches several posted
///   receives, the earliest-posted one matches.
/// * **C2 — non-overtaking messages.** If two messages match the same
///   receive pattern, they match (and are consumed from the UMQ) in arrival
///   order.
///
/// The [`Oracle`](crate::oracle::Oracle) encodes these rules directly; the
/// workspace property tests assert every implementation agrees with it.
pub trait Matcher {
    /// Posts a receive: first searches the unexpected message queue; on a
    /// miss, records the receive in the posted receive queue.
    fn post(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<PostResult, MatchError>;

    /// Delivers an incoming message: first searches the posted receive
    /// queue; on a miss, stores the message in the unexpected message queue.
    fn arrive(&mut self, env: Envelope, handle: MsgHandle) -> Result<ArriveResult, MatchError>;

    /// Number of receives currently pending in the posted receive queue.
    fn prq_len(&self) -> usize;

    /// Number of messages currently waiting in the unexpected message queue.
    fn umq_len(&self) -> usize;

    /// Non-destructive unexpected-queue probe (`MPI_Iprobe` semantics):
    /// returns the oldest waiting message matching `pattern` without
    /// consuming it, or `None` if no unexpected message matches.
    fn probe(&self, pattern: &ReceivePattern) -> Option<MsgHandle>;

    /// Search-depth and queue statistics accumulated so far.
    fn stats(&self) -> &MatchStats;

    /// Resets the accumulated statistics (queue contents are untouched).
    fn reset_stats(&mut self);

    /// A short name identifying the strategy (for reports and Table I).
    fn strategy_name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_result_accessor() {
        assert_eq!(
            PostResult::Matched(MsgHandle(4)).matched(),
            Some(MsgHandle(4))
        );
        assert_eq!(PostResult::Posted.matched(), None);
    }

    #[test]
    fn arrive_result_accessor() {
        assert_eq!(
            ArriveResult::Matched(RecvHandle(9)).matched(),
            Some(RecvHandle(9))
        );
        assert_eq!(ArriveResult::Unexpected.matched(), None);
    }

    #[test]
    fn handles_are_ordered() {
        assert!(RecvHandle(1) < RecvHandle(2));
        assert!(MsgHandle(1) < MsgHandle(2));
    }
}
