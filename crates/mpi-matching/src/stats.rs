//! Search-depth and queue-length statistics.
//!
//! Fig. 7 of the paper reports *queue depth*: the number of queue elements a
//! matching attempt examines before it finds a match or gives up. With one
//! bin this is the traditional linear scan; with `b` bins the expected depth
//! drops towards `n/b` (§II-B). The trace analyzer aggregates these samples
//! per application and per bin count.

use serde::{Deserialize, Serialize};

/// Running aggregate of a stream of `usize` samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DepthAggregate {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl DepthAggregate {
    /// Records one sample.
    #[inline]
    pub fn record(&mut self, depth: usize) {
        let d = depth as u64;
        self.count += 1;
        self.sum += d;
        if d > self.max {
            self.max = d;
        }
    }

    /// Arithmetic mean of the samples, or 0.0 if none were recorded.
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &DepthAggregate) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Samples recorded since `prev` was taken (saturating). `max` is a
    /// high-water mark and carries the current value.
    pub fn delta(&self, prev: &DepthAggregate) -> DepthAggregate {
        DepthAggregate {
            count: self.count.saturating_sub(prev.count),
            sum: self.sum.saturating_sub(prev.sum),
            max: self.max,
        }
    }
}

/// Statistics accumulated by a matching engine.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MatchStats {
    /// Depth of searches through the posted receive queue (one sample per
    /// incoming message).
    pub prq_search: DepthAggregate,
    /// Depth of searches through the unexpected message queue (one sample
    /// per posted receive).
    pub umq_search: DepthAggregate,
    /// Messages that matched a posted receive on arrival.
    pub matched_on_arrival: u64,
    /// Messages that became unexpected.
    pub unexpected: u64,
    /// Receives that matched an unexpected message at post time.
    pub matched_on_post: u64,
    /// Receives that were appended to the posted receive queue.
    pub posted: u64,
    /// High-water mark of the posted receive queue length.
    pub prq_high_water: usize,
    /// High-water mark of the unexpected message queue length.
    pub umq_high_water: usize,
}

impl MatchStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        MatchStats::default()
    }

    /// Records a PRQ search and its outcome. `examined` is the number of
    /// live entries the search looked at, *including* the matched one; the
    /// recorded queue-depth sample excludes the match itself, so it counts
    /// the wasted comparisons. (This is the paper's Fig. 7 accounting: a
    /// 26-receive fan-in yields a maximum depth of 25, and a first-try hit
    /// costs 0 — which is how the 128-bin average can fall to 0.33.)
    #[inline]
    pub fn record_arrival(&mut self, examined: usize, matched: bool) {
        let depth = if matched {
            examined.saturating_sub(1)
        } else {
            examined
        };
        self.prq_search.record(depth);
        if matched {
            self.matched_on_arrival += 1;
        } else {
            self.unexpected += 1;
        }
    }

    /// Records a UMQ search and its outcome, with the same
    /// examined-minus-match accounting as [`MatchStats::record_arrival`].
    #[inline]
    pub fn record_post(&mut self, examined: usize, matched: bool) {
        let depth = if matched {
            examined.saturating_sub(1)
        } else {
            examined
        };
        self.umq_search.record(depth);
        if matched {
            self.matched_on_post += 1;
        } else {
            self.posted += 1;
        }
    }

    /// Updates the queue-length high-water marks.
    #[inline]
    pub fn observe_queue_lens(&mut self, prq: usize, umq: usize) {
        if prq > self.prq_high_water {
            self.prq_high_water = prq;
        }
        if umq > self.umq_high_water {
            self.umq_high_water = umq;
        }
    }

    /// Combined mean search depth over both queues — the per-application
    /// "queue depth" series of Fig. 7.
    pub fn mean_depth(&self) -> f64 {
        let count = self.prq_search.count + self.umq_search.count;
        if count == 0 {
            0.0
        } else {
            (self.prq_search.sum + self.umq_search.sum) as f64 / count as f64
        }
    }

    /// Combined maximum search depth over both queues.
    pub fn max_depth(&self) -> u64 {
        self.prq_search.max.max(self.umq_search.max)
    }

    /// Merges another statistics block into this one (used to aggregate
    /// per-rank replays).
    pub fn merge(&mut self, other: &MatchStats) {
        self.prq_search.merge(&other.prq_search);
        self.umq_search.merge(&other.umq_search);
        self.matched_on_arrival += other.matched_on_arrival;
        self.unexpected += other.unexpected;
        self.matched_on_post += other.matched_on_post;
        self.posted += other.posted;
        self.prq_high_water = self.prq_high_water.max(other.prq_high_water);
        self.umq_high_water = self.umq_high_water.max(other.umq_high_water);
    }

    /// Activity recorded since `prev` was taken (saturating per counter).
    /// High-water marks are instantaneous maxima and carry their current
    /// values rather than a difference.
    pub fn delta(&self, prev: &MatchStats) -> MatchStats {
        MatchStats {
            prq_search: self.prq_search.delta(&prev.prq_search),
            umq_search: self.umq_search.delta(&prev.umq_search),
            matched_on_arrival: self
                .matched_on_arrival
                .saturating_sub(prev.matched_on_arrival),
            unexpected: self.unexpected.saturating_sub(prev.unexpected),
            matched_on_post: self.matched_on_post.saturating_sub(prev.matched_on_post),
            posted: self.posted.saturating_sub(prev.posted),
            prq_high_water: self.prq_high_water,
            umq_high_water: self.umq_high_water,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_tracks_count_sum_max() {
        let mut a = DepthAggregate::default();
        for d in [3usize, 0, 7, 2] {
            a.record(d);
        }
        assert_eq!(a.count, 4);
        assert_eq!(a.sum, 12);
        assert_eq!(a.max, 7);
        assert!((a.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_aggregate_mean_is_zero() {
        assert_eq!(DepthAggregate::default().mean(), 0.0);
    }

    #[test]
    fn merge_combines_aggregates() {
        let mut a = DepthAggregate::default();
        a.record(5);
        let mut b = DepthAggregate::default();
        b.record(9);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 15);
        assert_eq!(a.max, 9);
    }

    #[test]
    fn outcome_counters_partition_events() {
        let mut s = MatchStats::new();
        s.record_arrival(1, true);
        s.record_arrival(4, false);
        s.record_post(0, true);
        s.record_post(2, false);
        assert_eq!(s.matched_on_arrival, 1);
        assert_eq!(s.unexpected, 1);
        assert_eq!(s.matched_on_post, 1);
        assert_eq!(s.posted, 1);
        assert_eq!(s.prq_search.count + s.umq_search.count, 4);
    }

    #[test]
    fn mean_depth_spans_both_queues() {
        let mut s = MatchStats::new();
        s.record_arrival(4, true); // 3 wasted comparisons + the match
        s.record_post(0, false);
        assert!((s.mean_depth() - 1.5).abs() < 1e-12);
        assert_eq!(s.max_depth(), 3);
    }

    #[test]
    fn first_try_hits_cost_zero() {
        let mut s = MatchStats::new();
        s.record_arrival(1, true);
        s.record_post(1, true);
        assert_eq!(s.mean_depth(), 0.0);
        assert_eq!(s.max_depth(), 0);
    }

    #[test]
    fn high_water_marks_are_monotone() {
        let mut s = MatchStats::new();
        s.observe_queue_lens(3, 1);
        s.observe_queue_lens(2, 5);
        assert_eq!(s.prq_high_water, 3);
        assert_eq!(s.umq_high_water, 5);
    }

    #[test]
    fn aggregate_delta_subtracts_counters_keeps_max() {
        let mut prev = DepthAggregate::default();
        prev.record(3);
        prev.record(5);
        let mut cur = prev.clone();
        cur.record(1);
        let d = cur.delta(&prev);
        assert_eq!(d.count, 1);
        assert_eq!(d.sum, 1);
        assert_eq!(d.max, 5, "max is a high-water mark");
        // Saturates rather than underflowing after a reset.
        let fresh = DepthAggregate::default();
        assert_eq!(fresh.delta(&prev).count, 0);
    }

    #[test]
    fn stats_delta_isolates_interval_activity() {
        let mut s = MatchStats::new();
        s.record_arrival(2, true);
        s.record_post(1, false);
        s.observe_queue_lens(4, 2);
        let first = s.clone();
        s.record_arrival(3, false);
        s.record_post(0, true);
        s.observe_queue_lens(1, 7);
        let d = s.delta(&first);
        assert_eq!(d.matched_on_arrival, 0);
        assert_eq!(d.unexpected, 1);
        assert_eq!(d.matched_on_post, 1);
        assert_eq!(d.posted, 0);
        assert_eq!(d.prq_search.count, 1);
        assert_eq!(d.prq_search.sum, 3);
        assert_eq!(d.umq_search.count, 1);
        assert_eq!(d.prq_high_water, 4, "high-water carries current value");
        assert_eq!(d.umq_high_water, 7);
        // Delta of identical snapshots is all-zero counters.
        let z = s.delta(&s);
        assert_eq!(z.prq_search.count, 0);
        assert_eq!(z.matched_on_arrival + z.unexpected + z.posted, 0);
    }

    #[test]
    fn stats_merge_is_componentwise() {
        let mut a = MatchStats::new();
        a.record_arrival(2, true);
        a.observe_queue_lens(1, 1);
        let mut b = MatchStats::new();
        b.record_post(3, false);
        b.observe_queue_lens(4, 0);
        a.merge(&b);
        assert_eq!(a.matched_on_arrival, 1);
        assert_eq!(a.posted, 1);
        assert_eq!(a.prq_high_water, 4);
        assert_eq!(a.umq_high_water, 1);
    }
}
