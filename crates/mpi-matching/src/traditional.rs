//! The traditional two-queue matcher — the paper's **MPI-CPU** baseline.
//!
//! Mainstream MPI implementations keep two linked lists (Fig. 1): the posted
//! receive queue (PRQ) and the unexpected message queue (UMQ). Posting walks
//! the UMQ from its head; message arrival walks the PRQ from its head. List
//! order is post/arrival order, which makes both C1 and C2 hold by
//! construction — at the cost of `O(n)` searches that serialize matching
//! (§I, §II-A). This is also exactly the 1-bin configuration of the Fig. 7
//! sweep.
//!
//! The implementation uses an arena of entries threaded through an intrusive
//! singly-linked list (indices instead of pointers), mirroring how MPI
//! libraries lay these queues out, and counts every link traversal so the
//! trace analyzer can report search depths.

use crate::matcher::{ArriveResult, Matcher, MsgHandle, PostResult, RecvHandle};
use crate::stats::MatchStats;
use otm_base::{Envelope, MatchError, ReceivePattern};

const NIL: u32 = u32::MAX;

/// An intrusive singly-linked FIFO over an arena with a free list.
///
/// Generic over the entry payload so the PRQ (patterns) and the UMQ
/// (envelopes) share the machinery.
#[derive(Debug, Clone)]
struct LinkedQueue<T> {
    arena: Vec<Entry<T>>,
    free: u32,
    head: u32,
    tail: u32,
    len: usize,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    item: Option<T>,
    next: u32,
}

impl<T> LinkedQueue<T> {
    fn new() -> Self {
        LinkedQueue {
            arena: Vec::new(),
            free: NIL,
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Appends at the tail (newest end).
    fn push_back(&mut self, item: T) {
        let idx = if self.free != NIL {
            let idx = self.free;
            self.free = self.arena[idx as usize].next;
            self.arena[idx as usize] = Entry {
                item: Some(item),
                next: NIL,
            };
            idx
        } else {
            let idx = self.arena.len() as u32;
            self.arena.push(Entry {
                item: Some(item),
                next: NIL,
            });
            idx
        };
        if self.tail == NIL {
            self.head = idx;
        } else {
            self.arena[self.tail as usize].next = idx;
        }
        self.tail = idx;
        self.len += 1;
    }

    /// Scans from the head; removes and returns the first entry `pred`
    /// accepts, together with the number of entries examined.
    fn remove_first<F: FnMut(&T) -> bool>(&mut self, mut pred: F) -> (Option<T>, usize) {
        let mut prev = NIL;
        let mut cur = self.head;
        let mut depth = 0usize;
        while cur != NIL {
            depth += 1;
            let entry = &self.arena[cur as usize];
            let item = entry.item.as_ref().expect("live entry has an item");
            if pred(item) {
                let next = entry.next;
                if prev == NIL {
                    self.head = next;
                } else {
                    self.arena[prev as usize].next = next;
                }
                if cur == self.tail {
                    self.tail = prev;
                }
                let taken = self.arena[cur as usize].item.take();
                self.arena[cur as usize].next = self.free;
                self.free = cur;
                self.len -= 1;
                return (taken, depth);
            }
            prev = cur;
            cur = entry.next;
        }
        (None, depth)
    }

    /// Iterates items in queue order (oldest first).
    fn iter(&self) -> impl Iterator<Item = &T> {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let entry = &self.arena[cur as usize];
            cur = entry.next;
            entry.item.as_ref()
        })
    }
}

/// The traditional linked-list matcher (see module docs).
#[derive(Debug, Clone)]
pub struct TraditionalMatcher {
    prq: LinkedQueue<(ReceivePattern, RecvHandle)>,
    umq: LinkedQueue<(Envelope, MsgHandle)>,
    stats: MatchStats,
}

impl TraditionalMatcher {
    /// Creates an empty matcher.
    pub fn new() -> Self {
        TraditionalMatcher {
            prq: LinkedQueue::new(),
            umq: LinkedQueue::new(),
            stats: MatchStats::new(),
        }
    }

    /// Pending receives in post order (oldest first) — used by tests and by
    /// the trace analyzer's final-state dump.
    pub fn pending_receives(&self) -> Vec<RecvHandle> {
        self.prq.iter().map(|(_, h)| *h).collect()
    }

    /// Waiting unexpected messages in arrival order (oldest first).
    pub fn waiting_messages(&self) -> Vec<MsgHandle> {
        self.umq.iter().map(|(_, h)| *h).collect()
    }

    /// Copies out the full matching state: pending receives in post order
    /// and unexpected messages in arrival order — the
    /// [`FallbackState`](crate::backend::FallbackState) shape the backend
    /// trait's drain hands to a replacement matcher.
    pub fn snapshot_state(&self) -> crate::backend::FallbackState {
        crate::backend::FallbackState::from_state(
            self.prq.iter().copied().collect(),
            self.umq.iter().copied().collect(),
        )
    }
}

impl Default for TraditionalMatcher {
    fn default() -> Self {
        TraditionalMatcher::new()
    }
}

impl Matcher for TraditionalMatcher {
    fn post(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<PostResult, MatchError> {
        let (hit, depth) = self.umq.remove_first(|(env, _)| pattern.matches(env));
        let result = match hit {
            Some((_, m)) => {
                self.stats.record_post(depth, true);
                PostResult::Matched(m)
            }
            None => {
                self.prq.push_back((pattern, handle));
                self.stats.record_post(depth, false);
                PostResult::Posted
            }
        };
        self.stats
            .observe_queue_lens(self.prq.len(), self.umq.len());
        Ok(result)
    }

    fn arrive(&mut self, env: Envelope, handle: MsgHandle) -> Result<ArriveResult, MatchError> {
        let (hit, depth) = self.prq.remove_first(|(p, _)| p.matches(&env));
        let result = match hit {
            Some((_, r)) => {
                self.stats.record_arrival(depth, true);
                ArriveResult::Matched(r)
            }
            None => {
                self.umq.push_back((env, handle));
                self.stats.record_arrival(depth, false);
                ArriveResult::Unexpected
            }
        };
        self.stats
            .observe_queue_lens(self.prq.len(), self.umq.len());
        Ok(result)
    }

    fn prq_len(&self) -> usize {
        self.prq.len()
    }

    fn umq_len(&self) -> usize {
        self.umq.len()
    }

    fn probe(&self, pattern: &ReceivePattern) -> Option<MsgHandle> {
        self.umq
            .iter()
            .find(|(env, _)| pattern.matches(env))
            .map(|&(_, m)| m)
    }

    fn stats(&self) -> &MatchStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MatchStats::new();
    }

    fn strategy_name(&self) -> &'static str {
        "traditional"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{MatchEvent, Oracle};
    use otm_base::{Rank, Tag};

    fn post(src: u32, tag: u32) -> MatchEvent {
        MatchEvent::Post(ReceivePattern::exact(Rank(src), Tag(tag)))
    }

    fn arrive(src: u32, tag: u32) -> MatchEvent {
        MatchEvent::Arrive(Envelope::world(Rank(src), Tag(tag)))
    }

    #[test]
    fn agrees_with_oracle_on_basic_flows() {
        let workloads: Vec<Vec<MatchEvent>> = vec![
            vec![post(0, 1), arrive(0, 1)],
            vec![arrive(0, 1), post(0, 1)],
            vec![post(0, 1), post(0, 1), arrive(0, 1), arrive(0, 1)],
            vec![arrive(1, 2), arrive(1, 2), post(1, 2), post(1, 2)],
            vec![
                MatchEvent::Post(ReceivePattern::any_source(Tag(5))),
                post(2, 5),
                arrive(2, 5),
                arrive(2, 5),
            ],
        ];
        for events in &workloads {
            let mut m = TraditionalMatcher::new();
            let got = Oracle::drive(&mut m, events).unwrap();
            assert_eq!(got, Oracle::run(events), "workload {events:?}");
        }
    }

    #[test]
    fn search_depth_counts_link_traversals() {
        let mut m = TraditionalMatcher::new();
        Oracle::drive(&mut m, &[post(0, 1), post(0, 2), post(0, 3), arrive(0, 3)]).unwrap();
        // The arrival walked past two receives before hitting the third.
        assert_eq!(m.stats().prq_search.max, 2);
    }

    #[test]
    fn high_water_marks_track_queue_growth() {
        let mut m = TraditionalMatcher::new();
        Oracle::drive(&mut m, &[arrive(0, 1), arrive(0, 2), arrive(0, 3)]).unwrap();
        assert_eq!(m.stats().umq_high_water, 3);
        assert_eq!(m.umq_len(), 3);
    }

    #[test]
    fn arena_reuses_freed_slots() {
        let mut m = TraditionalMatcher::new();
        // Fill and drain repeatedly; the arena must not grow past the peak.
        for round in 0..10u32 {
            for i in 0..8u32 {
                m.post(
                    ReceivePattern::exact(Rank(0), Tag(i)),
                    RecvHandle(u64::from(round * 8 + i)),
                )
                .unwrap();
            }
            for i in 0..8u32 {
                m.arrive(
                    Envelope::world(Rank(0), Tag(i)),
                    MsgHandle(u64::from(round * 8 + i)),
                )
                .unwrap();
            }
        }
        assert_eq!(m.prq_len(), 0);
        assert!(
            m.prq.arena.len() <= 8,
            "arena grew to {}",
            m.prq.arena.len()
        );
    }

    #[test]
    fn removal_from_middle_keeps_order() {
        let mut m = TraditionalMatcher::new();
        m.post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(0))
            .unwrap();
        m.post(ReceivePattern::exact(Rank(0), Tag(1)), RecvHandle(1))
            .unwrap();
        m.post(ReceivePattern::exact(Rank(0), Tag(2)), RecvHandle(2))
            .unwrap();
        // Remove the middle receive.
        let r = m
            .arrive(Envelope::world(Rank(0), Tag(1)), MsgHandle(0))
            .unwrap();
        assert_eq!(r, ArriveResult::Matched(RecvHandle(1)));
        assert_eq!(m.pending_receives(), vec![RecvHandle(0), RecvHandle(2)]);
        // Remove the tail, then the head.
        m.arrive(Envelope::world(Rank(0), Tag(2)), MsgHandle(1))
            .unwrap();
        assert_eq!(m.pending_receives(), vec![RecvHandle(0)]);
        m.arrive(Envelope::world(Rank(0), Tag(0)), MsgHandle(2))
            .unwrap();
        assert!(m.pending_receives().is_empty());
    }

    #[test]
    fn tail_removal_then_push_keeps_list_wellformed() {
        let mut m = TraditionalMatcher::new();
        m.post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(0))
            .unwrap();
        m.arrive(Envelope::world(Rank(0), Tag(0)), MsgHandle(0))
            .unwrap();
        m.post(ReceivePattern::exact(Rank(0), Tag(1)), RecvHandle(1))
            .unwrap();
        assert_eq!(m.pending_receives(), vec![RecvHandle(1)]);
    }

    #[test]
    fn strategy_name_is_stable() {
        assert_eq!(TraditionalMatcher::new().strategy_name(), "traditional");
    }
}
