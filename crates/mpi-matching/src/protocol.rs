//! Eager / rendezvous protocol state machines (§IV-B).
//!
//! The protocol handling stage is deliberately decoupled from matching: once
//! a receive is selected, the transfer can be driven on the SmartNIC or on
//! the host. Small messages use the **eager** protocol — the full payload
//! travels with the message, is staged in a bounce buffer, and is copied to
//! the user buffer after the match. Large messages use **rendezvous** — the
//! sender ships a Ready-To-Send (RTS) descriptor (optionally with some
//! piggybacked head data), and after the match the receiver issues an RDMA
//! read from the sender's registered buffer into the user buffer.
//!
//! The state machines here are pure control flow: they emit [`Action`]s that
//! a transport (the `dpa-sim` crate in this workspace) executes, and they
//! reject out-of-order events, which gives the simulator's protocol driving
//! a checked skeleton.

use serde::{Deserialize, Serialize};

/// Default eager/rendezvous switchover, in bytes. Typical MPI
/// implementations sit between 4 KiB and 64 KiB; the exact value is a
/// transport tuning knob.
pub const DEFAULT_EAGER_THRESHOLD: usize = 8 * 1024;

/// Which protocol a message of a given size uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Payload travels with the message.
    Eager,
    /// Sender announces with an RTS; receiver pulls via RDMA read.
    Rendezvous,
}

/// Selects the protocol for a message of `len` bytes under the given
/// threshold: messages *strictly larger* than the threshold rendezvous.
#[inline]
pub fn protocol_for(len: usize, eager_threshold: usize) -> ProtocolKind {
    if len <= eager_threshold {
        ProtocolKind::Eager
    } else {
        ProtocolKind::Rendezvous
    }
}

/// A transport-level action requested by a protocol state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Copy `len` bytes from the staging (bounce or unexpected) buffer to
    /// the user buffer.
    CopyToUser {
        /// Bytes to copy.
        len: usize,
    },
    /// Issue an RDMA read of `len` bytes from the sender's buffer.
    IssueRdmaRead {
        /// Remote memory key from the RTS.
        rkey: u64,
        /// Remote virtual address from the RTS.
        remote_addr: u64,
        /// Bytes to read.
        len: usize,
    },
    /// The transfer is complete; the receive can be marked done.
    Complete,
}

/// Error returned when a protocol event arrives in the wrong state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolStateError {
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for ProtocolStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol state error: {}", self.message)
    }
}

impl std::error::Error for ProtocolStateError {}

fn state_error<T>(message: impl Into<String>) -> Result<T, ProtocolStateError> {
    Err(ProtocolStateError {
        message: message.into(),
    })
}

/// An eager transfer: staged payload awaiting a match, then one copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EagerTransfer {
    len: usize,
    state: EagerState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum EagerState {
    Staged,
    Copying,
    Complete,
}

impl EagerTransfer {
    /// A new transfer whose `len`-byte payload has been staged (in a bounce
    /// buffer if expected-path, in the unexpected store otherwise).
    pub fn staged(len: usize) -> Self {
        EagerTransfer {
            len,
            state: EagerState::Staged,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the payload is empty (zero-byte messages are legal in MPI).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The match completed: request the staging-to-user copy.
    pub fn on_match(&mut self) -> Result<Action, ProtocolStateError> {
        match self.state {
            EagerState::Staged => {
                self.state = EagerState::Copying;
                Ok(Action::CopyToUser { len: self.len })
            }
            _ => state_error("eager transfer matched twice"),
        }
    }

    /// The copy finished: the transfer is complete.
    pub fn on_copy_done(&mut self) -> Result<Action, ProtocolStateError> {
        match self.state {
            EagerState::Copying => {
                self.state = EagerState::Complete;
                Ok(Action::Complete)
            }
            EagerState::Staged => state_error("eager copy completed before match"),
            EagerState::Complete => state_error("eager copy completed twice"),
        }
    }

    /// Whether the transfer has completed.
    pub fn is_complete(&self) -> bool {
        self.state == EagerState::Complete
    }
}

/// The Ready-To-Send descriptor announcing a rendezvous transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rts {
    /// Remote memory key granting read access to the send buffer.
    pub rkey: u64,
    /// Remote virtual address of the send buffer.
    pub remote_addr: u64,
    /// Total payload length in bytes.
    pub len: usize,
    /// Bytes of head data piggybacked on the RTS itself (0 if none).
    pub piggyback: usize,
}

/// A rendezvous transfer: RTS received, match, RDMA read, done.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RendezvousTransfer {
    rts: Rts,
    state: RndvState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum RndvState {
    RtsReceived,
    ReadInFlight,
    Complete,
}

impl RendezvousTransfer {
    /// A new transfer whose RTS has been received (and possibly stored as
    /// unexpected: "for rendezvous, the stored data contains the information
    /// needed by the RDMA read", §IV-C).
    pub fn rts_received(rts: Rts) -> Self {
        RendezvousTransfer {
            rts,
            state: RndvState::RtsReceived,
        }
    }

    /// The RTS descriptor.
    pub fn rts(&self) -> Rts {
        self.rts
    }

    /// The match completed: request the RDMA read of the remaining payload
    /// (anything piggybacked on the RTS is already local).
    pub fn on_match(&mut self) -> Result<Action, ProtocolStateError> {
        match self.state {
            RndvState::RtsReceived => {
                self.state = RndvState::ReadInFlight;
                // A malformed RTS could claim more piggybacked bytes than
                // the payload holds; clamp so the read length can never
                // underflow into a ~2^64-byte request.
                let piggyback = self.rts.piggyback.min(self.rts.len);
                Ok(Action::IssueRdmaRead {
                    rkey: self.rts.rkey,
                    remote_addr: self.rts.remote_addr + piggyback as u64,
                    len: self.rts.len - piggyback,
                })
            }
            _ => state_error("rendezvous transfer matched twice"),
        }
    }

    /// The RDMA read completed: the transfer is complete.
    pub fn on_read_complete(&mut self) -> Result<Action, ProtocolStateError> {
        match self.state {
            RndvState::ReadInFlight => {
                self.state = RndvState::Complete;
                Ok(Action::Complete)
            }
            RndvState::RtsReceived => state_error("RDMA read completed before match"),
            RndvState::Complete => state_error("RDMA read completed twice"),
        }
    }

    /// Whether the transfer has completed.
    pub fn is_complete(&self) -> bool {
        self.state == RndvState::Complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_selects_protocol() {
        assert_eq!(
            protocol_for(0, DEFAULT_EAGER_THRESHOLD),
            ProtocolKind::Eager
        );
        assert_eq!(
            protocol_for(DEFAULT_EAGER_THRESHOLD, DEFAULT_EAGER_THRESHOLD),
            ProtocolKind::Eager
        );
        assert_eq!(
            protocol_for(DEFAULT_EAGER_THRESHOLD + 1, DEFAULT_EAGER_THRESHOLD),
            ProtocolKind::Rendezvous
        );
    }

    #[test]
    fn eager_happy_path() {
        let mut t = EagerTransfer::staged(128);
        assert_eq!(t.on_match().unwrap(), Action::CopyToUser { len: 128 });
        assert_eq!(t.on_copy_done().unwrap(), Action::Complete);
        assert!(t.is_complete());
    }

    #[test]
    fn eager_zero_byte_message_is_legal() {
        let mut t = EagerTransfer::staged(0);
        assert!(t.is_empty());
        assert_eq!(t.on_match().unwrap(), Action::CopyToUser { len: 0 });
        t.on_copy_done().unwrap();
        assert!(t.is_complete());
    }

    #[test]
    fn eager_rejects_out_of_order_events() {
        let mut t = EagerTransfer::staged(8);
        assert!(t.on_copy_done().is_err());
        t.on_match().unwrap();
        assert!(t.on_match().is_err());
        t.on_copy_done().unwrap();
        assert!(t.on_copy_done().is_err());
    }

    #[test]
    fn rendezvous_happy_path() {
        let rts = Rts {
            rkey: 0xabc,
            remote_addr: 0x1000,
            len: 1 << 20,
            piggyback: 0,
        };
        let mut t = RendezvousTransfer::rts_received(rts);
        assert_eq!(
            t.on_match().unwrap(),
            Action::IssueRdmaRead {
                rkey: 0xabc,
                remote_addr: 0x1000,
                len: 1 << 20
            }
        );
        assert_eq!(t.on_read_complete().unwrap(), Action::Complete);
        assert!(t.is_complete());
    }

    #[test]
    fn rendezvous_piggyback_shrinks_the_read() {
        let rts = Rts {
            rkey: 1,
            remote_addr: 0x2000,
            len: 4096,
            piggyback: 256,
        };
        let mut t = RendezvousTransfer::rts_received(rts);
        assert_eq!(
            t.on_match().unwrap(),
            Action::IssueRdmaRead {
                rkey: 1,
                remote_addr: 0x2000 + 256,
                len: 4096 - 256
            }
        );
    }

    #[test]
    fn malformed_piggyback_is_clamped_not_underflowed() {
        let rts = Rts {
            rkey: 2,
            remote_addr: 0x100,
            len: 64,
            piggyback: 1000, // claims more than the payload holds
        };
        let mut t = RendezvousTransfer::rts_received(rts);
        assert_eq!(
            t.on_match().unwrap(),
            Action::IssueRdmaRead {
                rkey: 2,
                remote_addr: 0x100 + 64,
                len: 0
            }
        );
    }

    #[test]
    fn rendezvous_rejects_out_of_order_events() {
        let rts = Rts {
            rkey: 1,
            remote_addr: 0,
            len: 100_000,
            piggyback: 0,
        };
        let mut t = RendezvousTransfer::rts_received(rts);
        assert!(t.on_read_complete().is_err());
        t.on_match().unwrap();
        assert!(t.on_match().is_err());
        t.on_read_complete().unwrap();
        assert!(t.on_read_complete().is_err());
    }

    #[test]
    fn state_error_displays_its_message() {
        let mut t = EagerTransfer::staged(8);
        let err = t.on_copy_done().unwrap_err();
        assert!(err.to_string().contains("before match"));
    }
}
