//! A bin-based matcher in the style of Flajslik et al. ("Mitigating MPI
//! message matching misery", ISC 2016) — the engine behind the Fig. 7 bin
//! sweep.
//!
//! Fully-specified receives live in a hash table keyed on
//! `(source, tag, communicator)`; receives using any wildcard live in a
//! separate ordered list. Every entry carries a timestamp (its post label)
//! so that a message whose bin candidate and wildcard-list candidate both
//! match picks the earlier-posted one, preserving C1 across the two
//! structures. The unexpected side mirrors this: messages are binned by
//! their `(source, tag)` key *and* threaded onto a global arrival-order
//! list that wildcard receives search, preserving C2.
//!
//! With `b = 1` every key collides and the matcher degenerates into the
//! traditional linear scan — the paper uses exactly this as the 1-bin
//! baseline of Fig. 7. The average search cost for well-spread keys is
//! `O(n/b)` (§II-B).

use crate::matcher::{ArriveResult, Matcher, MsgHandle, PostResult, RecvHandle};
use crate::stats::MatchStats;
use otm_base::hash::{bin_of, hash_src_tag};
use otm_base::{Envelope, MatchError, PostLabel, ReceivePattern, WildcardClass};
use std::collections::VecDeque;

/// A posted receive entry.
#[derive(Debug, Clone, Copy)]
struct PostedRecv {
    pattern: ReceivePattern,
    label: PostLabel,
    handle: RecvHandle,
}

/// A slab entry for an unexpected message. Messages are referenced from both
/// the bin and the global list, so removal tombstones the slab entry and the
/// scans clean up references as they pass. References are generation-stamped
/// so a recycled slot cannot resurrect under a stale reference (which would
/// surface the new message at the old message's queue position, violating C2).
#[derive(Debug, Clone, Copy)]
struct UnexpectedMsg {
    env: Envelope,
    handle: MsgHandle,
    gen: u32,
    alive: bool,
}

/// Generation-stamped reference to a slab entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EntryRef {
    slot: u32,
    gen: u32,
}

/// The bin-based matcher (see module docs).
#[derive(Debug, Clone)]
pub struct BinnedMatcher {
    bins: usize,
    /// PRQ bins: fully-specified receives, post order within each bin.
    prq_bins: Vec<VecDeque<PostedRecv>>,
    /// PRQ wildcard list: receives with any wildcard, post order.
    prq_wild: VecDeque<PostedRecv>,
    next_label: PostLabel,
    /// UMQ slab; `umq_bins` and `umq_order` hold indices into it.
    umq_slab: Vec<UnexpectedMsg>,
    umq_free: Vec<u32>,
    umq_bins: Vec<VecDeque<EntryRef>>,
    umq_order: VecDeque<EntryRef>,
    umq_live: usize,
    prq_live: usize,
    stats: MatchStats,
}

impl BinnedMatcher {
    /// Creates a matcher with `bins` bins per hash table.
    ///
    /// # Panics
    /// Panics if `bins == 0`.
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0, "a bin-based matcher needs at least one bin");
        BinnedMatcher {
            bins,
            prq_bins: vec![VecDeque::new(); bins],
            prq_wild: VecDeque::new(),
            next_label: PostLabel::ZERO,
            umq_slab: Vec::new(),
            umq_free: Vec::new(),
            umq_bins: vec![VecDeque::new(); bins],
            umq_order: VecDeque::new(),
            umq_live: 0,
            prq_live: 0,
            stats: MatchStats::new(),
        }
    }

    /// Number of bins per hash table.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Fraction of PRQ bins currently empty — one of the statistics the
    /// paper's analyzer records (§V-A).
    pub fn prq_empty_bin_fraction(&self) -> f64 {
        let empty = self.prq_bins.iter().filter(|b| b.is_empty()).count();
        empty as f64 / self.bins as f64
    }

    /// Copies out the full matching state: pending receives re-serialized
    /// into post order (the bins and the wildcard list are merged by post
    /// label) and unexpected messages in arrival order — the
    /// [`FallbackState`](crate::backend::FallbackState) shape the backend
    /// trait's drain hands to a replacement matcher.
    pub fn snapshot_state(&self) -> crate::backend::FallbackState {
        let mut posted: Vec<PostedRecv> = self
            .prq_bins
            .iter()
            .flatten()
            .chain(self.prq_wild.iter())
            .copied()
            .collect();
        posted.sort_by_key(|r| r.label);
        let receives = posted.into_iter().map(|r| (r.pattern, r.handle)).collect();
        // The global order list is in arrival order; skip stale refs.
        let unexpected = self
            .umq_order
            .iter()
            .filter_map(|r| {
                let e = &self.umq_slab[r.slot as usize];
                (e.gen == r.gen && e.alive).then_some((e.env, e.handle))
            })
            .collect();
        crate::backend::FallbackState::from_state(receives, unexpected)
    }

    fn bin_for_env(&self, env: &Envelope) -> usize {
        bin_of(hash_src_tag(env.src, env.tag, env.comm), self.bins)
    }

    /// Bin index for a fully-specified receive pattern.
    fn bin_for_pattern(&self, p: &ReceivePattern) -> usize {
        use otm_base::envelope::{SourceSel, TagSel};
        let (SourceSel::Rank(src), TagSel::Tag(tag)) = (p.src, p.tag) else {
            unreachable!("only fully-specified receives are binned");
        };
        bin_of(hash_src_tag(src, tag, p.comm), self.bins)
    }

    fn alloc_umq(&mut self, env: Envelope, handle: MsgHandle) -> EntryRef {
        let slot = if let Some(idx) = self.umq_free.pop() {
            let gen = self.umq_slab[idx as usize].gen;
            self.umq_slab[idx as usize] = UnexpectedMsg {
                env,
                handle,
                gen,
                alive: true,
            };
            idx
        } else {
            let idx = self.umq_slab.len() as u32;
            self.umq_slab.push(UnexpectedMsg {
                env,
                handle,
                gen: 0,
                alive: true,
            });
            idx
        };
        EntryRef {
            slot,
            gen: self.umq_slab[slot as usize].gen,
        }
    }

    /// Scans an index deque of UMQ slab references, dropping dead references
    /// in passing; removes and returns the first live entry matching
    /// `pattern`, with the number of live entries examined.
    fn scan_umq_refs(
        slab: &mut [UnexpectedMsg],
        refs: &mut VecDeque<EntryRef>,
        pattern: &ReceivePattern,
    ) -> (Option<(u32, MsgHandle)>, usize) {
        let mut depth = 0usize;
        let mut i = 0usize;
        while i < refs.len() {
            let r = refs[i];
            let entry = &mut slab[r.slot as usize];
            if entry.gen != r.gen || !entry.alive {
                refs.remove(i);
                continue;
            }
            depth += 1;
            if pattern.matches(&entry.env) {
                entry.alive = false;
                entry.gen = entry.gen.wrapping_add(1);
                let handle = entry.handle;
                refs.remove(i);
                return (Some((r.slot, handle)), depth);
            }
            i += 1;
        }
        (None, depth)
    }
}

impl Matcher for BinnedMatcher {
    fn post(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<PostResult, MatchError> {
        // Fully-specified receives need only search their key's bin; wildcard
        // receives search the global arrival-order list. Either search
        // returns the oldest matching message because both structures keep
        // arrival order.
        let wild = pattern.wildcard_class() != WildcardClass::None;
        let (hit, depth) = if wild {
            Self::scan_umq_refs(&mut self.umq_slab, &mut self.umq_order, &pattern)
        } else {
            let bin = self.bin_for_pattern(&pattern);
            Self::scan_umq_refs(&mut self.umq_slab, &mut self.umq_bins[bin], &pattern)
        };
        let result = match hit {
            Some((idx, msg)) => {
                self.umq_free.push(idx);
                self.umq_live -= 1;
                self.stats.record_post(depth, true);
                PostResult::Matched(msg)
            }
            None => {
                let entry = PostedRecv {
                    pattern,
                    label: self.next_label,
                    handle,
                };
                self.next_label = self.next_label.next();
                if wild {
                    self.prq_wild.push_back(entry);
                } else {
                    let bin = self.bin_for_pattern(&pattern);
                    self.prq_bins[bin].push_back(entry);
                }
                self.prq_live += 1;
                self.stats.record_post(depth, false);
                PostResult::Posted
            }
        };
        self.stats.observe_queue_lens(self.prq_live, self.umq_live);
        Ok(result)
    }

    fn arrive(&mut self, env: Envelope, handle: MsgHandle) -> Result<ArriveResult, MatchError> {
        // Candidate 1: the first matching receive in the message's bin.
        let bin = self.bin_for_env(&env);
        let mut depth = 0usize;
        let mut bin_hit: Option<(usize, PostLabel)> = None;
        for (i, r) in self.prq_bins[bin].iter().enumerate() {
            depth += 1;
            if r.pattern.matches(&env) {
                bin_hit = Some((i, r.label));
                break;
            }
        }
        // Candidate 2: the first matching receive in the wildcard list.
        let mut wild_hit: Option<(usize, PostLabel)> = None;
        for (i, r) in self.prq_wild.iter().enumerate() {
            depth += 1;
            if r.pattern.matches(&env) {
                wild_hit = Some((i, r.label));
                break;
            }
        }
        // The timestamps arbitrate C1 between the two structures.
        let take_bin = match (bin_hit, wild_hit) {
            (Some((_, bl)), Some((_, wl))) => bl < wl,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => {
                let r = self.alloc_umq(env, handle);
                self.umq_bins[bin].push_back(r);
                self.umq_order.push_back(r);
                self.umq_live += 1;
                self.stats.record_arrival(depth, false);
                self.stats.observe_queue_lens(self.prq_live, self.umq_live);
                return Ok(ArriveResult::Unexpected);
            }
        };
        let recv = if take_bin {
            let (i, _) = bin_hit.expect("bin candidate chosen");
            self.prq_bins[bin].remove(i).expect("index valid")
        } else {
            let (i, _) = wild_hit.expect("wildcard candidate chosen");
            self.prq_wild.remove(i).expect("index valid")
        };
        self.prq_live -= 1;
        self.stats.record_arrival(depth, true);
        self.stats.observe_queue_lens(self.prq_live, self.umq_live);
        Ok(ArriveResult::Matched(recv.handle))
    }

    fn prq_len(&self) -> usize {
        self.prq_live
    }

    fn umq_len(&self) -> usize {
        self.umq_live
    }

    fn probe(&self, pattern: &ReceivePattern) -> Option<MsgHandle> {
        // The global list is in arrival order; skip stale refs read-only.
        self.umq_order.iter().find_map(|r| {
            let e = &self.umq_slab[r.slot as usize];
            (e.gen == r.gen && e.alive && pattern.matches(&e.env)).then_some(e.handle)
        })
    }

    fn stats(&self) -> &MatchStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MatchStats::new();
    }

    fn strategy_name(&self) -> &'static str {
        "bin-based"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{MatchEvent, Oracle};
    use otm_base::{Rank, Tag};

    fn post(src: u32, tag: u32) -> MatchEvent {
        MatchEvent::Post(ReceivePattern::exact(Rank(src), Tag(tag)))
    }

    fn arrive(src: u32, tag: u32) -> MatchEvent {
        MatchEvent::Arrive(Envelope::world(Rank(src), Tag(tag)))
    }

    fn check_against_oracle(bins: usize, events: &[MatchEvent]) {
        let mut m = BinnedMatcher::new(bins);
        let got = Oracle::drive(&mut m, events).unwrap();
        assert_eq!(got, Oracle::run(events), "bins={bins}, workload {events:?}");
    }

    #[test]
    fn agrees_with_oracle_across_bin_counts() {
        let events = vec![
            post(0, 1),
            post(1, 1),
            MatchEvent::Post(ReceivePattern::any_source(Tag(1))),
            arrive(1, 1),
            arrive(0, 1),
            arrive(5, 1),
            MatchEvent::Post(ReceivePattern::any_any()),
            arrive(9, 9),
            post(9, 9),
        ];
        for bins in [1, 2, 32, 128] {
            check_against_oracle(bins, &events);
        }
    }

    #[test]
    fn one_bin_behaves_like_traditional() {
        use crate::traditional::TraditionalMatcher;
        let events: Vec<MatchEvent> = (0..40)
            .map(|i| {
                if i % 3 == 0 {
                    post(i % 5, i % 7)
                } else {
                    arrive(i % 5, (i + 1) % 7)
                }
            })
            .collect();
        let mut binned = BinnedMatcher::new(1);
        let mut trad = TraditionalMatcher::new();
        let a = Oracle::drive(&mut binned, &events).unwrap();
        let b = Oracle::drive(&mut trad, &events).unwrap();
        assert_eq!(a, b);
        // With one bin the search depths are the traditional linear-scan
        // depths too.
        assert_eq!(binned.stats().prq_search.max, trad.stats().prq_search.max);
        assert_eq!(binned.stats().prq_search.sum, trad.stats().prq_search.sum);
    }

    #[test]
    fn timestamps_arbitrate_between_bin_and_wildcard_list() {
        // Wildcard receive posted FIRST must beat a bin receive posted later.
        check_against_oracle(
            32,
            &[
                MatchEvent::Post(ReceivePattern::any_source(Tag(4))),
                post(2, 4),
                arrive(2, 4),
            ],
        );
        // And the other way around.
        check_against_oracle(
            32,
            &[
                post(2, 4),
                MatchEvent::Post(ReceivePattern::any_source(Tag(4))),
                arrive(2, 4),
            ],
        );
    }

    #[test]
    fn more_bins_reduce_search_depth() {
        // 64 receives with distinct tags, then 64 matching messages in
        // reverse order: the classic matching-misery pattern.
        let mut events = Vec::new();
        for t in 0..64u32 {
            events.push(post(0, t));
        }
        for t in (0..64u32).rev() {
            events.push(arrive(0, t));
        }
        let mut depth1 = 0.0;
        let mut depth128 = 0.0;
        for (bins, out) in [(1usize, &mut depth1), (128usize, &mut depth128)] {
            let mut m = BinnedMatcher::new(bins);
            Oracle::drive(&mut m, &events).unwrap();
            *out = m.stats().prq_search.mean();
        }
        assert!(
            depth128 < depth1 / 4.0,
            "1 bin: {depth1}, 128 bins: {depth128}"
        );
    }

    #[test]
    fn empty_bin_fraction_reflects_occupancy() {
        let mut m = BinnedMatcher::new(16);
        assert_eq!(m.prq_empty_bin_fraction(), 1.0);
        m.post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(0))
            .unwrap();
        assert!(m.prq_empty_bin_fraction() < 1.0);
    }

    #[test]
    fn umq_slab_recycles_entries() {
        let mut m = BinnedMatcher::new(8);
        for round in 0..6u64 {
            for i in 0..10u64 {
                m.arrive(
                    Envelope::world(Rank(0), Tag(i as u32)),
                    MsgHandle(round * 10 + i),
                )
                .unwrap();
            }
            for i in 0..10u64 {
                let r = m
                    .post(
                        ReceivePattern::exact(Rank(0), Tag(i as u32)),
                        RecvHandle(round * 10 + i),
                    )
                    .unwrap();
                assert!(matches!(r, PostResult::Matched(_)));
            }
        }
        assert_eq!(m.umq_len(), 0);
        assert!(m.umq_slab.len() <= 10, "slab grew to {}", m.umq_slab.len());
    }

    #[test]
    fn dead_references_are_purged_from_both_umq_views() {
        let mut m = BinnedMatcher::new(4);
        // Two unexpected messages; consume the older via the bin path
        // (exact receive), then the younger via the wildcard path.
        m.arrive(Envelope::world(Rank(0), Tag(0)), MsgHandle(0))
            .unwrap();
        m.arrive(Envelope::world(Rank(1), Tag(1)), MsgHandle(1))
            .unwrap();
        let r = m
            .post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(0))
            .unwrap();
        assert_eq!(r, PostResult::Matched(MsgHandle(0)));
        // The global order list still references the dead entry; a wildcard
        // post must skip it and find message 1.
        let r = m.post(ReceivePattern::any_any(), RecvHandle(1)).unwrap();
        assert_eq!(r, PostResult::Matched(MsgHandle(1)));
        assert_eq!(m.umq_len(), 0);
    }

    #[test]
    fn zero_bins_is_rejected() {
        let result = std::panic::catch_unwind(|| BinnedMatcher::new(0));
        assert!(result.is_err());
    }

    #[test]
    fn random_workload_agrees_with_oracle() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        for bins in [1usize, 2, 7, 32, 128] {
            let events: Vec<MatchEvent> = (0..400)
                .map(|_| {
                    let src = rng.gen_range(0..4);
                    let tag = rng.gen_range(0..4);
                    match rng.gen_range(0..6) {
                        0 | 1 => arrive(src, tag),
                        2 | 3 => post(src, tag),
                        4 => MatchEvent::Post(ReceivePattern::any_source(Tag(tag))),
                        _ => MatchEvent::Post(ReceivePattern::any_tag(Rank(src))),
                    }
                })
                .collect();
            check_against_oracle(bins, &events);
        }
    }
}
