//! A deliberately simple sequential reference for MPI matching.
//!
//! MPI tag matching is a *deterministic* function of the interleaved
//! sequence of receive posts and message arrivals: constraint C1 forces a
//! message to match the earliest-posted matching receive, and constraint C2
//! (plus the UMQ discipline of Fig. 1) forces a receive to match the
//! earliest-arrived matching unexpected message. [`Oracle`] computes that
//! function with two plain vectors and linear scans — slow, obviously
//! correct, and the ground truth for every property test in this workspace,
//! including the parallel optimistic engine's.

use crate::matcher::{ArriveResult, Matcher, MsgHandle, PostResult, RecvHandle};
use crate::stats::MatchStats;
use otm_base::{Envelope, MatchError, ReceivePattern};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One step of a matching workload: either the application posts a receive
/// or the network delivers a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchEvent {
    /// The application posts a receive with this pattern.
    Post(ReceivePattern),
    /// A message with this envelope arrives.
    Arrive(Envelope),
}

/// The complete pairing produced by running a workload: which message each
/// receive got, and which receive each message got.
///
/// Handles are assigned densely in event order (the i-th `Post` event gets
/// `RecvHandle(i)` counting posts only, likewise for messages), so two
/// engines run over the same event sequence produce directly comparable
/// assignments.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// For every message delivered: the receive it was paired with, or
    /// `None` if it was still unexpected when the workload ended.
    pub msg_to_recv: BTreeMap<MsgHandle, Option<RecvHandle>>,
    /// For every receive posted: the message it was paired with, or `None`
    /// if it was still pending when the workload ended.
    pub recv_to_msg: BTreeMap<RecvHandle, Option<MsgHandle>>,
}

impl Assignment {
    /// Number of completed (message, receive) pairs.
    pub fn pairs(&self) -> usize {
        self.msg_to_recv.values().filter(|v| v.is_some()).count()
    }

    /// Checks internal consistency: the two maps must describe the same
    /// one-to-one pairing.
    pub fn is_consistent(&self) -> bool {
        let forward: Vec<_> = self
            .msg_to_recv
            .iter()
            .filter_map(|(m, r)| r.map(|r| (*m, r)))
            .collect();
        for (m, r) in &forward {
            if self.recv_to_msg.get(r) != Some(&Some(*m)) {
                return false;
            }
        }
        let paired_recvs = self.recv_to_msg.values().filter(|v| v.is_some()).count();
        forward.len() == paired_recvs
    }
}

/// The sequential reference matcher (see module docs).
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    prq: Vec<(ReceivePattern, RecvHandle)>,
    umq: Vec<(Envelope, MsgHandle)>,
    stats: MatchStats,
}

impl Oracle {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        Oracle::default()
    }

    /// Runs a whole workload through a fresh oracle, assigning handles in
    /// event order, and returns the resulting pairing.
    pub fn run(events: &[MatchEvent]) -> Assignment {
        let mut oracle = Oracle::new();
        Self::drive(&mut oracle, events).expect("oracle is unbounded and never fails")
    }

    /// Drives any [`Matcher`] over a workload with the same dense handle
    /// assignment as [`Oracle::run`], so the resulting [`Assignment`] can be
    /// compared against the oracle's.
    pub fn drive<M: Matcher + ?Sized>(
        matcher: &mut M,
        events: &[MatchEvent],
    ) -> Result<Assignment, MatchError> {
        let mut asg = Assignment::default();
        let mut next_recv = 0u64;
        let mut next_msg = 0u64;
        for ev in events {
            match *ev {
                MatchEvent::Post(pattern) => {
                    let h = RecvHandle(next_recv);
                    next_recv += 1;
                    match matcher.post(pattern, h)? {
                        PostResult::Matched(m) => {
                            asg.recv_to_msg.insert(h, Some(m));
                            asg.msg_to_recv.insert(m, Some(h));
                        }
                        PostResult::Posted => {
                            asg.recv_to_msg.insert(h, None);
                        }
                    }
                }
                MatchEvent::Arrive(env) => {
                    let m = MsgHandle(next_msg);
                    next_msg += 1;
                    match matcher.arrive(env, m)? {
                        ArriveResult::Matched(r) => {
                            asg.msg_to_recv.insert(m, Some(r));
                            asg.recv_to_msg.insert(r, Some(m));
                        }
                        ArriveResult::Unexpected => {
                            asg.msg_to_recv.insert(m, None);
                        }
                    }
                }
            }
        }
        Ok(asg)
    }

    /// Drives a [`MatchingBackend`](crate::backend::MatchingBackend) over a
    /// workload with the same dense handle assignment as [`Oracle::run`],
    /// delivering each arrival as a one-message block. The resulting
    /// [`Assignment`] is directly comparable with the oracle's.
    pub fn drive_backend(
        backend: &mut dyn crate::backend::MatchingBackend,
        events: &[MatchEvent],
    ) -> Result<Assignment, MatchError> {
        use crate::backend::BlockDelivery;
        let mut asg = Assignment::default();
        let mut next_recv = 0u64;
        let mut next_msg = 0u64;
        for ev in events {
            match *ev {
                MatchEvent::Post(pattern) => {
                    let h = RecvHandle(next_recv);
                    next_recv += 1;
                    match backend.post(pattern, h)? {
                        PostResult::Matched(m) => {
                            asg.recv_to_msg.insert(h, Some(m));
                            asg.msg_to_recv.insert(m, Some(h));
                        }
                        PostResult::Posted => {
                            asg.recv_to_msg.insert(h, None);
                        }
                    }
                }
                MatchEvent::Arrive(env) => {
                    let m = MsgHandle(next_msg);
                    next_msg += 1;
                    match backend.arrive_block(&[(env, m)])?[0] {
                        BlockDelivery::Matched { recv, .. } => {
                            asg.msg_to_recv.insert(m, Some(recv));
                            asg.recv_to_msg.insert(recv, Some(m));
                        }
                        BlockDelivery::Unexpected { .. } => {
                            asg.msg_to_recv.insert(m, None);
                        }
                    }
                }
            }
        }
        Ok(asg)
    }
}

impl Matcher for Oracle {
    fn post(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<PostResult, MatchError> {
        // C2 over the UMQ: the oldest matching unexpected message wins.
        // `umq` is kept in arrival order, so the first match is the oldest.
        let hit = self.umq.iter().position(|(env, _)| pattern.matches(env));
        let depth = hit.map_or(self.umq.len(), |i| i + 1);
        match hit {
            Some(i) => {
                let (_, m) = self.umq.remove(i);
                self.stats.record_post(depth, true);
                self.stats
                    .observe_queue_lens(self.prq.len(), self.umq.len());
                Ok(PostResult::Matched(m))
            }
            None => {
                self.prq.push((pattern, handle));
                self.stats.record_post(depth, false);
                self.stats
                    .observe_queue_lens(self.prq.len(), self.umq.len());
                Ok(PostResult::Posted)
            }
        }
    }

    fn arrive(&mut self, env: Envelope, handle: MsgHandle) -> Result<ArriveResult, MatchError> {
        // C1 over the PRQ: the earliest-posted matching receive wins.
        // `prq` is kept in post order, so the first match is the earliest.
        let hit = self.prq.iter().position(|(p, _)| p.matches(&env));
        let depth = hit.map_or(self.prq.len(), |i| i + 1);
        match hit {
            Some(i) => {
                let (_, r) = self.prq.remove(i);
                self.stats.record_arrival(depth, true);
                self.stats
                    .observe_queue_lens(self.prq.len(), self.umq.len());
                Ok(ArriveResult::Matched(r))
            }
            None => {
                self.umq.push((env, handle));
                self.stats.record_arrival(depth, false);
                self.stats
                    .observe_queue_lens(self.prq.len(), self.umq.len());
                Ok(ArriveResult::Unexpected)
            }
        }
    }

    fn prq_len(&self) -> usize {
        self.prq.len()
    }

    fn umq_len(&self) -> usize {
        self.umq.len()
    }

    fn probe(&self, pattern: &ReceivePattern) -> Option<MsgHandle> {
        self.umq
            .iter()
            .find(|(env, _)| pattern.matches(env))
            .map(|&(_, m)| m)
    }

    fn stats(&self) -> &MatchStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MatchStats::new();
    }

    fn strategy_name(&self) -> &'static str {
        "oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_base::{Rank, Tag};

    fn post(src: u32, tag: u32) -> MatchEvent {
        MatchEvent::Post(ReceivePattern::exact(Rank(src), Tag(tag)))
    }

    fn arrive(src: u32, tag: u32) -> MatchEvent {
        MatchEvent::Arrive(Envelope::world(Rank(src), Tag(tag)))
    }

    #[test]
    fn expected_message_matches_posted_receive() {
        let asg = Oracle::run(&[post(0, 1), arrive(0, 1)]);
        assert_eq!(asg.msg_to_recv[&MsgHandle(0)], Some(RecvHandle(0)));
        assert!(asg.is_consistent());
    }

    #[test]
    fn unexpected_message_matches_later_receive() {
        let asg = Oracle::run(&[arrive(0, 1), post(0, 1)]);
        assert_eq!(asg.recv_to_msg[&RecvHandle(0)], Some(MsgHandle(0)));
        assert!(asg.is_consistent());
    }

    #[test]
    fn c1_earliest_posted_receive_wins() {
        // Two receives both match; the first-posted one must match first.
        let asg = Oracle::run(&[post(0, 1), post(0, 1), arrive(0, 1)]);
        assert_eq!(asg.msg_to_recv[&MsgHandle(0)], Some(RecvHandle(0)));
        assert_eq!(asg.recv_to_msg[&RecvHandle(1)], None);
    }

    #[test]
    fn c1_applies_across_wildcard_classes() {
        // An ANY_SOURCE receive posted before an exact one must win even
        // though it lives in a different index class.
        let events = [
            MatchEvent::Post(ReceivePattern::any_source(Tag(1))),
            post(0, 1),
            arrive(0, 1),
        ];
        let asg = Oracle::run(&events);
        assert_eq!(asg.msg_to_recv[&MsgHandle(0)], Some(RecvHandle(0)));
    }

    #[test]
    fn c2_messages_do_not_overtake() {
        // Two identical messages, two identical receives: pairing must be
        // in-order on both sides.
        let asg = Oracle::run(&[post(0, 1), post(0, 1), arrive(0, 1), arrive(0, 1)]);
        assert_eq!(asg.msg_to_recv[&MsgHandle(0)], Some(RecvHandle(0)));
        assert_eq!(asg.msg_to_recv[&MsgHandle(1)], Some(RecvHandle(1)));
    }

    #[test]
    fn c2_umq_consumed_in_arrival_order() {
        let asg = Oracle::run(&[arrive(0, 1), arrive(0, 1), post(0, 1)]);
        assert_eq!(asg.recv_to_msg[&RecvHandle(0)], Some(MsgHandle(0)));
        assert_eq!(asg.msg_to_recv[&MsgHandle(1)], None);
    }

    #[test]
    fn non_matching_messages_stay_unexpected() {
        let asg = Oracle::run(&[post(0, 1), arrive(0, 2), arrive(1, 1)]);
        assert_eq!(asg.msg_to_recv[&MsgHandle(0)], None);
        assert_eq!(asg.msg_to_recv[&MsgHandle(1)], None);
        assert_eq!(asg.recv_to_msg[&RecvHandle(0)], None);
    }

    #[test]
    fn wildcard_receive_scoops_oldest_unexpected() {
        let events = [
            arrive(3, 7),
            arrive(2, 9),
            MatchEvent::Post(ReceivePattern::any_any()),
        ];
        let asg = Oracle::run(&events);
        assert_eq!(asg.recv_to_msg[&RecvHandle(0)], Some(MsgHandle(0)));
    }

    #[test]
    fn stats_reflect_search_depths() {
        let mut oracle = Oracle::new();
        Oracle::drive(&mut oracle, &[post(0, 1), post(0, 2), arrive(0, 2)]).unwrap();
        // The arrival scanned past the tag-1 receive to hit the tag-2 one:
        // one wasted comparison.
        assert_eq!(oracle.stats().prq_search.max, 1);
        assert_eq!(oracle.stats().matched_on_arrival, 1);
        assert_eq!(oracle.prq_len(), 1);
    }

    #[test]
    fn assignment_consistency_detects_corruption() {
        let mut asg = Oracle::run(&[post(0, 1), arrive(0, 1)]);
        assert!(asg.is_consistent());
        asg.recv_to_msg.insert(RecvHandle(0), None);
        assert!(!asg.is_consistent());
    }
}
