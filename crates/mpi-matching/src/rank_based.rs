//! A rank-based matcher in the style of Dózsa et al. ("Enabling concurrent
//! multithreaded MPI communication on multicore petascale systems",
//! EuroMPI 2010) — included for the Table I strategy comparison.
//!
//! Receives naming a concrete source rank are kept in a per-rank list;
//! `MPI_ANY_SOURCE` receives go to a shared list. Post labels arbitrate C1
//! between the two, exactly as the timestamps do in the bin-based matcher.
//! The unexpected side keeps a per-source-rank list (messages always have a
//! concrete source) plus a global arrival-order list searched by
//! `MPI_ANY_SOURCE` receives.
//!
//! Compared to the bin-based scheme, the rank-based split is perfect for
//! many-to-one patterns (each sender gets its own queue) but degenerates when
//! one peer sends with many tags: all of those collide in one rank list.

use crate::matcher::{ArriveResult, Matcher, MsgHandle, PostResult, RecvHandle};
use crate::stats::MatchStats;
use otm_base::envelope::SourceSel;
use otm_base::{Envelope, MatchError, PostLabel, Rank, ReceivePattern};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

#[derive(Debug, Clone, Copy)]
struct PostedRecv {
    pattern: ReceivePattern,
    label: PostLabel,
    handle: RecvHandle,
}

#[derive(Debug, Clone, Copy)]
struct UnexpectedMsg {
    env: Envelope,
    handle: MsgHandle,
    gen: u32,
    alive: bool,
}

/// Generation-stamped reference to a slab entry; prevents a recycled slot
/// from resurrecting under a stale reference held by the other UMQ view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EntryRef {
    slot: u32,
    gen: u32,
}

/// The rank-based matcher (see module docs).
#[derive(Debug, Clone, Default)]
pub struct RankBasedMatcher {
    /// Receives with a concrete source, keyed by that source rank.
    prq_by_rank: HashMap<Rank, VecDeque<PostedRecv>>,
    /// `MPI_ANY_SOURCE` receives, post order.
    prq_any_source: VecDeque<PostedRecv>,
    next_label: PostLabel,
    umq_slab: Vec<UnexpectedMsg>,
    umq_free: Vec<u32>,
    umq_by_rank: HashMap<Rank, VecDeque<EntryRef>>,
    umq_order: VecDeque<EntryRef>,
    umq_live: usize,
    prq_live: usize,
    stats: MatchStats,
}

impl RankBasedMatcher {
    /// Creates an empty matcher.
    pub fn new() -> Self {
        RankBasedMatcher::default()
    }

    fn alloc_umq(&mut self, env: Envelope, handle: MsgHandle) -> EntryRef {
        let slot = if let Some(idx) = self.umq_free.pop() {
            let gen = self.umq_slab[idx as usize].gen;
            self.umq_slab[idx as usize] = UnexpectedMsg {
                env,
                handle,
                gen,
                alive: true,
            };
            idx
        } else {
            let idx = self.umq_slab.len() as u32;
            self.umq_slab.push(UnexpectedMsg {
                env,
                handle,
                gen: 0,
                alive: true,
            });
            idx
        };
        EntryRef {
            slot,
            gen: self.umq_slab[slot as usize].gen,
        }
    }

    fn scan_umq_refs(
        slab: &mut [UnexpectedMsg],
        refs: &mut VecDeque<EntryRef>,
        pattern: &ReceivePattern,
    ) -> (Option<(u32, MsgHandle)>, usize) {
        let mut depth = 0usize;
        let mut i = 0usize;
        while i < refs.len() {
            let r = refs[i];
            let entry = &mut slab[r.slot as usize];
            if entry.gen != r.gen || !entry.alive {
                refs.remove(i);
                continue;
            }
            depth += 1;
            if pattern.matches(&entry.env) {
                entry.alive = false;
                entry.gen = entry.gen.wrapping_add(1);
                let handle = entry.handle;
                refs.remove(i);
                return (Some((r.slot, handle)), depth);
            }
            i += 1;
        }
        (None, depth)
    }
}

impl Matcher for RankBasedMatcher {
    fn post(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<PostResult, MatchError> {
        let (hit, depth) = match pattern.src {
            SourceSel::Rank(src) => match self.umq_by_rank.entry(src) {
                Entry::Occupied(mut e) => {
                    let (hit, depth) =
                        Self::scan_umq_refs(&mut self.umq_slab, e.get_mut(), &pattern);
                    if e.get().is_empty() {
                        e.remove();
                    }
                    (hit, depth)
                }
                Entry::Vacant(_) => (None, 0),
            },
            SourceSel::Any => {
                Self::scan_umq_refs(&mut self.umq_slab, &mut self.umq_order, &pattern)
            }
        };
        let result = match hit {
            Some((idx, msg)) => {
                self.umq_free.push(idx);
                self.umq_live -= 1;
                self.stats.record_post(depth, true);
                PostResult::Matched(msg)
            }
            None => {
                let entry = PostedRecv {
                    pattern,
                    label: self.next_label,
                    handle,
                };
                self.next_label = self.next_label.next();
                match pattern.src {
                    SourceSel::Rank(src) => {
                        self.prq_by_rank.entry(src).or_default().push_back(entry)
                    }
                    SourceSel::Any => self.prq_any_source.push_back(entry),
                }
                self.prq_live += 1;
                self.stats.record_post(depth, false);
                PostResult::Posted
            }
        };
        self.stats.observe_queue_lens(self.prq_live, self.umq_live);
        Ok(result)
    }

    fn arrive(&mut self, env: Envelope, handle: MsgHandle) -> Result<ArriveResult, MatchError> {
        let mut depth = 0usize;
        // Candidate 1: first match in the sender's rank list.
        let mut rank_hit: Option<(usize, PostLabel)> = None;
        if let Some(list) = self.prq_by_rank.get(&env.src) {
            for (i, r) in list.iter().enumerate() {
                depth += 1;
                if r.pattern.matches(&env) {
                    rank_hit = Some((i, r.label));
                    break;
                }
            }
        }
        // Candidate 2: first match in the ANY_SOURCE list.
        let mut any_hit: Option<(usize, PostLabel)> = None;
        for (i, r) in self.prq_any_source.iter().enumerate() {
            depth += 1;
            if r.pattern.matches(&env) {
                any_hit = Some((i, r.label));
                break;
            }
        }
        let take_rank = match (rank_hit, any_hit) {
            (Some((_, rl)), Some((_, al))) => rl < al,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => {
                let r = self.alloc_umq(env, handle);
                self.umq_by_rank.entry(env.src).or_default().push_back(r);
                self.umq_order.push_back(r);
                self.umq_live += 1;
                self.stats.record_arrival(depth, false);
                self.stats.observe_queue_lens(self.prq_live, self.umq_live);
                return Ok(ArriveResult::Unexpected);
            }
        };
        let recv = if take_rank {
            let (i, _) = rank_hit.expect("rank candidate chosen");
            let list = self.prq_by_rank.get_mut(&env.src).expect("list exists");
            let r = list.remove(i).expect("index valid");
            if list.is_empty() {
                self.prq_by_rank.remove(&env.src);
            }
            r
        } else {
            let (i, _) = any_hit.expect("any-source candidate chosen");
            self.prq_any_source.remove(i).expect("index valid")
        };
        self.prq_live -= 1;
        self.stats.record_arrival(depth, true);
        self.stats.observe_queue_lens(self.prq_live, self.umq_live);
        Ok(ArriveResult::Matched(recv.handle))
    }

    fn prq_len(&self) -> usize {
        self.prq_live
    }

    fn umq_len(&self) -> usize {
        self.umq_live
    }

    fn probe(&self, pattern: &ReceivePattern) -> Option<MsgHandle> {
        self.umq_order.iter().find_map(|r| {
            let e = &self.umq_slab[r.slot as usize];
            (e.gen == r.gen && e.alive && pattern.matches(&e.env)).then_some(e.handle)
        })
    }

    fn stats(&self) -> &MatchStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MatchStats::new();
    }

    fn strategy_name(&self) -> &'static str {
        "rank-based"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{MatchEvent, Oracle};
    use otm_base::Tag;

    fn post(src: u32, tag: u32) -> MatchEvent {
        MatchEvent::Post(ReceivePattern::exact(Rank(src), Tag(tag)))
    }

    fn arrive(src: u32, tag: u32) -> MatchEvent {
        MatchEvent::Arrive(Envelope::world(Rank(src), Tag(tag)))
    }

    #[test]
    fn agrees_with_oracle_on_mixed_workload() {
        let events = vec![
            post(0, 1),
            MatchEvent::Post(ReceivePattern::any_source(Tag(1))),
            MatchEvent::Post(ReceivePattern::any_tag(Rank(1))),
            arrive(1, 1),
            arrive(0, 1),
            arrive(2, 1),
            arrive(3, 3),
            MatchEvent::Post(ReceivePattern::any_any()),
            post(3, 3),
        ];
        let mut m = RankBasedMatcher::new();
        assert_eq!(
            Oracle::drive(&mut m, &events).unwrap(),
            Oracle::run(&events)
        );
    }

    #[test]
    fn many_to_one_searches_stay_shallow() {
        // 32 senders, one receive posted per sender; messages arrive in
        // reverse sender order. Rank lists keep every search at depth <= 2
        // (its own list plus an empty ANY_SOURCE list costs nothing extra).
        let mut events = Vec::new();
        for s in 0..32u32 {
            events.push(post(s, 0));
        }
        for s in (0..32u32).rev() {
            events.push(arrive(s, 0));
        }
        let mut m = RankBasedMatcher::new();
        Oracle::drive(&mut m, &events).unwrap();
        assert!(
            m.stats().prq_search.max <= 2,
            "max depth {}",
            m.stats().prq_search.max
        );
    }

    #[test]
    fn single_sender_many_tags_degenerates() {
        // The weakness of rank-based matching: one sender, many tags.
        let mut events = Vec::new();
        for t in 0..32u32 {
            events.push(post(0, t));
        }
        for t in (0..32u32).rev() {
            events.push(arrive(0, t));
        }
        let mut m = RankBasedMatcher::new();
        Oracle::drive(&mut m, &events).unwrap();
        assert_eq!(m.stats().prq_search.max, 31);
    }

    #[test]
    fn any_source_receive_consumes_oldest_across_ranks() {
        let events = vec![
            arrive(5, 0),
            arrive(1, 0),
            MatchEvent::Post(ReceivePattern::any_source(Tag(0))),
        ];
        let mut m = RankBasedMatcher::new();
        let asg = Oracle::drive(&mut m, &events).unwrap();
        assert_eq!(asg, Oracle::run(&events));
        assert_eq!(asg.recv_to_msg[&RecvHandle(0)], Some(MsgHandle(0)));
    }

    #[test]
    fn label_arbitration_between_rank_and_any_source_lists() {
        for flip in [false, true] {
            let mut events = vec![
                MatchEvent::Post(ReceivePattern::any_source(Tag(2))),
                post(4, 2),
            ];
            if flip {
                events.swap(0, 1);
            }
            events.push(arrive(4, 2));
            let mut m = RankBasedMatcher::new();
            assert_eq!(
                Oracle::drive(&mut m, &events).unwrap(),
                Oracle::run(&events),
                "flip={flip}"
            );
        }
    }

    #[test]
    fn empty_rank_lists_are_dropped() {
        let mut m = RankBasedMatcher::new();
        m.post(ReceivePattern::exact(Rank(7), Tag(0)), RecvHandle(0))
            .unwrap();
        m.arrive(Envelope::world(Rank(7), Tag(0)), MsgHandle(0))
            .unwrap();
        assert!(m.prq_by_rank.is_empty());
        assert_eq!(m.prq_len(), 0);
    }

    #[test]
    fn random_workload_agrees_with_oracle() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let events: Vec<MatchEvent> = (0..500)
            .map(|_| {
                let src = rng.gen_range(0..3);
                let tag = rng.gen_range(0..3);
                match rng.gen_range(0..7) {
                    0..=2 => arrive(src, tag),
                    3 | 4 => post(src, tag),
                    5 => MatchEvent::Post(ReceivePattern::any_source(Tag(tag))),
                    _ => MatchEvent::Post(ReceivePattern::any_any()),
                }
            })
            .collect();
        let mut m = RankBasedMatcher::new();
        assert_eq!(
            Oracle::drive(&mut m, &events).unwrap(),
            Oracle::run(&events)
        );
    }
}
