//! Host-side ("on-CPU") MPI tag-matching engines and semantics.
//!
//! This crate provides the substrates the paper compares *Optimistic Tag
//! Matching* against, plus the machinery used to verify it:
//!
//! * [`matcher`] — the common [`matcher::Matcher`] interface: post a
//!   receive, deliver a message, observe search-depth statistics;
//! * [`backend`] — the block-granular [`backend::MatchingBackend`] interface
//!   the SmartNIC simulator's service layer selects engines through (post /
//!   arrive-block / fallback-drain / stats-merge), implemented by the host
//!   engines here and by the offloaded optimistic engine in its own crate;
//! * [`traditional`] — the classic two-linked-list implementation (PRQ +
//!   UMQ) used by mainstream MPI libraries, the paper's **MPI-CPU** baseline
//!   and the 1-bin configuration of Fig. 7;
//! * [`binned`] — a bin-based matcher in the style of Flajslik et al.
//!   (two hash tables keyed on the matching fields, timestamps to preserve
//!   ordering, a separate ordered structure for wildcards), the engine behind
//!   the Fig. 7 bin sweep;
//! * [`rank_based`] — a per-source-rank matcher in the style of Dózsa et
//!   al., included for the Table I strategy comparison;
//! * [`oracle`] — a deliberately simple sequential reference implementation
//!   of the MPI matching constraints C1/C2. Every other engine in this
//!   workspace (including the parallel optimistic engine) is property-tested
//!   for bit-identical assignments against it;
//! * [`protocol`] — eager / rendezvous protocol state machines driven by the
//!   SmartNIC simulator after a match completes;
//! * [`stats`] — search-depth and queue-length statistics shared with the
//!   trace analyzer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod binned;
pub mod matcher;
pub mod oracle;
pub mod protocol;
pub mod rank_based;
pub mod stats;
pub mod traditional;

pub use backend::{
    BlockDelivery, CommandOutcome, DrainReport, FallbackState, MatchingBackend, PendingCommand,
    RdmaNoOp,
};
pub use matcher::{ArriveResult, Matcher, MsgHandle, PostResult, RecvHandle};
pub use oracle::{Assignment, MatchEvent, Oracle};
pub use stats::MatchStats;
