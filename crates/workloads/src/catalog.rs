//! The Table II application catalog.

use crate::apps;
use otm_trace::AppTrace;

/// One Table II entry: metadata plus its generator.
#[derive(Clone, Copy)]
pub struct AppSpec {
    /// Application name, exactly as in Table II.
    pub name: &'static str,
    /// The Table II description.
    pub description: &'static str,
    /// Number of processes recorded in the (synthetic) trace.
    pub processes: usize,
    /// Deterministic trace generator.
    pub generate: fn(u64) -> AppTrace,
}

impl std::fmt::Debug for AppSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppSpec")
            .field("name", &self.name)
            .field("processes", &self.processes)
            .finish()
    }
}

/// All sixteen Table II applications, sorted by name as in the paper.
pub fn catalog() -> Vec<AppSpec> {
    vec![
        AppSpec {
            name: "AMG",
            description: "Algebraic MultiGrid. Linear equation solver",
            processes: apps::amg::PROCESSES,
            generate: apps::amg::generate,
        },
        AppSpec {
            name: "AMR MiniApp",
            description: "Single step AMR for hydrodynamics",
            processes: apps::amr::PROCESSES,
            generate: apps::amr::generate,
        },
        AppSpec {
            name: "BigFFT",
            description: "Distributed Fast Fourier Transform",
            processes: apps::bigfft::PROCESSES,
            generate: apps::bigfft::generate,
        },
        AppSpec {
            name: "BoxLib CNS",
            description: "Compressible Navier Stokes equations integrator",
            processes: apps::boxlib::CNS_PROCESSES,
            generate: apps::boxlib::generate_cns,
        },
        AppSpec {
            name: "BoxLib MultiGrid",
            description: "Single step BoxLib linear solver",
            processes: apps::boxlib::BOXLIB_MG_PROCESSES,
            generate: apps::boxlib::generate_boxlib_mg,
        },
        AppSpec {
            name: "CrystalRouter",
            description: "Proxy application for the Nek5000 scalable communication pattern",
            processes: apps::crystal::PROCESSES,
            generate: apps::crystal::generate,
        },
        AppSpec {
            name: "FillBoundary",
            description: "Proxy application for ghost cell exchange using MultiFabs",
            processes: apps::boxlib::FILLBOUNDARY_PROCESSES,
            generate: apps::boxlib::generate_fillboundary,
        },
        AppSpec {
            name: "HILO",
            description: "Modeling of Neutron Transport Evaluation and Test Suite",
            processes: apps::hilo::PROCESSES,
            generate: apps::hilo::generate_hilo,
        },
        AppSpec {
            name: "HILO 2D",
            description: "Modeling of Neutron Transport Evaluation and Test Suite in 2D multinode",
            processes: apps::hilo::PROCESSES,
            generate: apps::hilo::generate_hilo2d,
        },
        AppSpec {
            name: "LULESH",
            description: "Proxy application for hydrodynamic codes",
            processes: apps::lulesh::PROCESSES,
            generate: apps::lulesh::generate,
        },
        AppSpec {
            name: "MiniFe",
            description: "Proxy application for finite elements codes",
            processes: apps::minife::PROCESSES,
            generate: apps::minife::generate,
        },
        AppSpec {
            name: "MOCFE",
            description: "Proxy application for Method of Characteristics (MOC) reactor simulator",
            processes: apps::mocfe::PROCESSES,
            generate: apps::mocfe::generate,
        },
        AppSpec {
            name: "MultiGrid",
            description: "MultiGrid solver based on BoxLib",
            processes: apps::boxlib::MULTIGRID_PROCESSES,
            generate: apps::boxlib::generate_multigrid,
        },
        AppSpec {
            name: "Nekbone",
            description: "Proxy application for the Nek5000 poison equation solver",
            processes: apps::nekbone::PROCESSES,
            generate: apps::nekbone::generate,
        },
        AppSpec {
            name: "PARTISN",
            description: "Discrete-ordinates neutral-particle transport equation solver",
            processes: apps::sweep::PROCESSES,
            generate: apps::sweep::generate_partisn,
        },
        AppSpec {
            name: "SNAP",
            description: "Proxy application for the PARTISN communication pattern",
            processes: apps::sweep::PROCESSES,
            generate: apps::sweep::generate_snap,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_applications_as_in_table2() {
        assert_eq!(catalog().len(), 16);
    }

    #[test]
    fn names_are_sorted_alphabetically_as_in_table2() {
        let names: Vec<&str> = catalog().iter().map(|a| a.name).collect();
        let mut sorted = names.clone();
        sorted.sort_by_key(|n| n.to_lowercase());
        assert_eq!(names, sorted);
    }

    #[test]
    fn process_counts_match_table2() {
        let expected: Vec<(&str, usize)> = vec![
            ("AMG", 8),
            ("AMR MiniApp", 64),
            ("BigFFT", 1024),
            ("BoxLib CNS", 64),
            ("BoxLib MultiGrid", 64),
            ("CrystalRouter", 100),
            ("FillBoundary", 1000),
            ("HILO", 256),
            ("HILO 2D", 256),
            ("LULESH", 64),
            ("MiniFe", 1152),
            ("MOCFE", 64),
            ("MultiGrid", 1000),
            ("Nekbone", 64),
            ("PARTISN", 168),
            ("SNAP", 168),
        ];
        let got: Vec<(&str, usize)> = catalog().iter().map(|a| (a.name, a.processes)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn every_generator_matches_its_declared_size_and_name() {
        for spec in catalog() {
            let trace = (spec.generate)(0);
            assert_eq!(trace.processes(), spec.processes, "{}", spec.name);
            assert_eq!(trace.name, spec.name);
            assert!(trace.total_ops() > 0, "{}", spec.name);
        }
    }
}
