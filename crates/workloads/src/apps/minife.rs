//! **MiniFE** — implicit finite-elements proxy (1152 processes in
//! Table II).
//!
//! Communication pattern: a conjugate-gradient solve. Every iteration does
//! a sparse matrix-vector product whose boundary exchange is a
//! face-neighbor halo over the 8×12×12 process grid (one tag per
//! iteration), followed by two `MPI_Allreduce` dot products. The per-rank
//! neighbor set is small and tags rotate per iteration, so receives spread
//! well over the bins — the canonical "good case" for optimistic matching.

use crate::builder::{face_neighbors_3d, grid3d_dims, halo_round, TraceBuilder};
use otm_trace::model::CollectiveKind;
use otm_trace::AppTrace;

/// Table II process count.
pub const PROCESSES: usize = 1152;

/// Generates the MiniFE trace.
pub fn generate(_seed: u64) -> AppTrace {
    let mut b = TraceBuilder::new("MiniFe", PROCESSES);
    let dims = grid3d_dims(PROCESSES);
    let neighbors = move |r: usize| face_neighbors_3d(r, dims);
    let iterations = 6;
    for it in 0..iterations {
        // SpMV boundary exchange.
        halo_round(
            &mut b,
            it,
            &neighbors,
            &|it, d| it * 8 + d as u32,
            &|d| d ^ 1,
            512,
        );
        // CG dot products.
        b.collective(CollectiveKind::Allreduce);
        b.collective(CollectiveKind::Allreduce);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_trace::{replay, ReplayConfig};

    #[test]
    fn trace_has_table2_process_count() {
        assert_eq!(generate(0).processes(), PROCESSES);
    }

    #[test]
    fn grid_factorization_is_8_12_12() {
        assert_eq!(grid3d_dims(PROCESSES), (8, 12, 12));
    }

    #[test]
    fn cg_iterations_complete_cleanly() {
        let report = replay(&generate(0), &ReplayConfig { bins: 32 });
        assert_eq!(report.final_prq, 0);
        assert_eq!(report.final_umq, 0);
        assert!(report.call_dist.p2p_fraction() > 0.5);
        assert!(report.call_dist.collective > 0);
    }

    #[test]
    fn rotating_tags_keep_bins_shallow() {
        let report = replay(&generate(0), &ReplayConfig { bins: 128 });
        assert!(
            report.mean_queue_depth < 0.6,
            "got {}",
            report.mean_queue_depth
        );
    }
}
