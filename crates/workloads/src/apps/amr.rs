//! **AMR MiniApp** — single-step adaptive mesh refinement for
//! hydrodynamics (64 processes in Table II).
//!
//! Communication pattern: a base halo exchange over the process grid, plus
//! refinement traffic — a randomized subset of ranks owns refined patches
//! and exchanges extra messages with the coarse owners of the overlapped
//! region, using distinct tags per patch. Refinement messages sometimes
//! arrive before their receives are posted (the receiver discovers the
//! refinement a little later), producing the small unexpected-message
//! population AMR codes show.

use crate::builder::{face_neighbors_3d, grid3d_dims, halo_round, TraceBuilder};
use otm_base::{Rank, Tag};
use otm_trace::model::CollectiveKind;
use otm_trace::AppTrace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Table II process count.
pub const PROCESSES: usize = 64;

/// Generates the AMR MiniApp trace.
pub fn generate(seed: u64) -> AppTrace {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xA3A3);
    let mut b = TraceBuilder::new("AMR MiniApp", PROCESSES);
    let dims = grid3d_dims(PROCESSES);
    let neighbors = move |r: usize| face_neighbors_3d(r, dims);

    // Base coarse-grid halo.
    halo_round(&mut b, 0, &neighbors, &|_, d| d as u32, &|d| d ^ 1, 256);

    // Refinement phase: ~1/4 of ranks own refined patches; each sends its
    // refined boundary to 2 coarse owners slightly before they post.
    let refined: Vec<usize> = (0..PROCESSES).filter(|_| rng.gen_bool(0.25)).collect();
    let mut pairs = Vec::new();
    for (patch, &owner) in refined.iter().enumerate() {
        for k in 0..2 {
            let coarse = (owner + 1 + k * 7 + rng.gen_range(0..3)) % PROCESSES;
            if coarse != owner {
                pairs.push((owner, coarse, 100 + patch as u32));
            }
        }
    }
    // Senders go first (the refinement is discovered sender-side)...
    for &(owner, coarse, tag) in &pairs {
        b.isend(owner, coarse, tag, 512);
    }
    b.sync();
    // ...and the coarse owners post afterwards: these match unexpected
    // messages.
    for &(owner, coarse, tag) in &pairs {
        b.irecv(coarse, Rank(owner as u32), Tag(tag), 512);
    }
    for rank in 0..PROCESSES {
        b.waitall(rank);
    }
    b.sync();

    // Regrid decision.
    b.collective(CollectiveKind::Allreduce);
    // Final consistency halo.
    halo_round(
        &mut b,
        1,
        &neighbors,
        &|_, d| 10 + d as u32,
        &|d| d ^ 1,
        256,
    );
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_trace::{replay, ReplayConfig};

    #[test]
    fn trace_has_table2_process_count() {
        assert_eq!(generate(1).processes(), PROCESSES);
    }

    #[test]
    fn refinement_produces_unexpected_messages() {
        let report = replay(&generate(1), &ReplayConfig::default());
        assert!(
            report.match_stats.unexpected > 0,
            "late-posted refinement receives"
        );
        assert_eq!(report.final_prq, 0);
        assert_eq!(report.final_umq, 0, "but everything pairs up eventually");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(generate(7), generate(7));
        assert_ne!(
            generate(7),
            generate(8),
            "different seeds refine differently"
        );
    }
}
