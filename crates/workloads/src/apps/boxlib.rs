//! The BoxLib family: **BoxLib CNS**, **BoxLib MultiGrid**, **MultiGrid**
//! and **FillBoundary** (Table II).
//!
//! All four are built on BoxLib's `MultiFab` ghost-cell machinery:
//!
//! * *BoxLib CNS* (64 procs) — compressible Navier-Stokes integrator: per
//!   timestep, several full 26-neighbor ghost exchanges (one per component
//!   group), each with its own tag window. The 26-wide same-window fan-in
//!   gives CNS the deepest 1-bin queues of the application set (the paper
//!   reports a maximum around 25).
//! * *BoxLib MultiGrid* (64 procs) — one V-cycle of the linear solver:
//!   face-neighbor halos per level plus restriction/prolongation transfers
//!   to/from the coarse-level owners, then a residual allreduce.
//! * *MultiGrid* (1000 procs) — the same solver pattern at the 10×10×10
//!   scale of the NERSC trace.
//! * *FillBoundary* (1000 procs) — the ghost-exchange benchmark in
//!   isolation: repeated face halos, p2p only (one of the three
//!   p2p-exclusive applications of Fig. 6).

use crate::builder::{face_neighbors_3d, full_neighbors_3d, grid3d_dims, halo_round, TraceBuilder};
use otm_base::{Rank, Tag};
use otm_trace::model::CollectiveKind;
use otm_trace::AppTrace;

/// BoxLib CNS process count (Table II).
pub const CNS_PROCESSES: usize = 64;
/// BoxLib MultiGrid process count (Table II).
pub const BOXLIB_MG_PROCESSES: usize = 64;
/// MultiGrid process count (Table II).
pub const MULTIGRID_PROCESSES: usize = 1000;
/// FillBoundary process count (Table II).
pub const FILLBOUNDARY_PROCESSES: usize = 1000;

/// Generates the BoxLib CNS trace.
pub fn generate_cns(_seed: u64) -> AppTrace {
    let mut b = TraceBuilder::new("BoxLib CNS", CNS_PROCESSES);
    let dims = grid3d_dims(CNS_PROCESSES);
    let neighbors = move |r: usize| full_neighbors_3d(r, dims);
    let steps = 5;
    for step in 0..steps {
        // Three component groups per RK stage share one tag window, so the
        // 26 in-flight receives of a group all collide at one bin.
        for group in 0..3u32 {
            halo_round(
                &mut b,
                step,
                &neighbors,
                &move |_r, _d| group,
                &|d| 25 - d,
                512,
            );
        }
        b.collective(CollectiveKind::Allreduce); // dt control
    }
    b.build()
}

/// One V-cycle of the BoxLib multigrid solver over `nprocs` ranks.
fn multigrid_trace(name: &str, nprocs: usize, cycles: u32) -> AppTrace {
    let mut b = TraceBuilder::new(name, nprocs);
    for cycle in 0..cycles {
        let mut level = 0u32;
        let mut stride = 1usize;
        // Down-sweep: smooth + restrict while at least 8 ranks are active.
        while nprocs / stride >= 8 {
            let active: Vec<usize> = (0..nprocs).step_by(stride).collect();
            let adims = grid3d_dims(active.len());
            let tag = cycle * 100 + level;
            // Smoothing halo among active ranks.
            for &rank in &active {
                for &p in &face_neighbors_3d(rank / stride, adims) {
                    let peer = active[p];
                    if peer != rank {
                        b.irecv(rank, Rank(peer as u32), Tag(tag), 128);
                    }
                }
            }
            b.sync();
            for &rank in &active {
                for &p in &face_neighbors_3d(rank / stride, adims) {
                    let peer = active[p];
                    if peer != rank {
                        b.isend(rank, peer, tag, 128);
                    }
                }
                b.waitall(rank);
            }
            b.sync();
            // Restriction: retiring ranks ship their patch to the coarse
            // owner (the rank they align with at the next stride).
            let next_stride = stride * 2;
            if nprocs / next_stride >= 8 {
                let rtag = cycle * 100 + 50 + level;
                for &rank in &active {
                    if rank % next_stride != 0 {
                        let owner = (rank / next_stride) * next_stride;
                        b.isend(rank, owner, rtag, 64);
                    }
                }
                b.sync();
                for &rank in &active {
                    if rank % next_stride == 0 {
                        for fine in active
                            .iter()
                            .filter(|&&f| f != rank && f / next_stride == rank / next_stride)
                        {
                            b.irecv(rank, Rank(*fine as u32), Tag(rtag), 64);
                        }
                        b.waitall(rank);
                    }
                }
                b.sync();
            }
            stride = next_stride;
            level += 1;
        }
        b.collective(CollectiveKind::Allreduce); // residual norm
    }
    b.build()
}

/// Generates the BoxLib MultiGrid trace (single V-cycle, 64 procs).
pub fn generate_boxlib_mg(_seed: u64) -> AppTrace {
    multigrid_trace("BoxLib MultiGrid", BOXLIB_MG_PROCESSES, 1)
}

/// Generates the MultiGrid trace (1000 procs).
pub fn generate_multigrid(_seed: u64) -> AppTrace {
    multigrid_trace("MultiGrid", MULTIGRID_PROCESSES, 2)
}

/// Generates the FillBoundary trace.
pub fn generate_fillboundary(_seed: u64) -> AppTrace {
    let mut b = TraceBuilder::new("FillBoundary", FILLBOUNDARY_PROCESSES);
    let dims = grid3d_dims(FILLBOUNDARY_PROCESSES);
    let neighbors = move |r: usize| face_neighbors_3d(r, dims);
    // Pure ghost exchange over several MultiFabs; strictly p2p. All fabs'
    // receives are pre-posted before the exchange fires (that is the whole
    // point of the FillBoundary benchmark), so 24 receives are in flight
    // per rank.
    let fab_tag = |fab: u32, d: usize| fab * 8 + d as u32;
    for fab in 0..4u32 {
        crate::builder::post_halo_receives(&mut b, fab, &neighbors, &fab_tag, 256);
    }
    b.sync();
    crate::builder::send_halo_phases(&mut b, &[0, 1, 2, 3], &neighbors, &fab_tag, &|d| d ^ 1, 256);
    b.sync();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_trace::{replay, ReplayConfig};

    #[test]
    fn process_counts_match_table2() {
        assert_eq!(generate_cns(0).processes(), 64);
        assert_eq!(generate_boxlib_mg(0).processes(), 64);
        assert_eq!(generate_multigrid(0).processes(), 1000);
        assert_eq!(generate_fillboundary(0).processes(), 1000);
    }

    #[test]
    fn cns_has_the_deepest_single_bin_queues() {
        let report = replay(&generate_cns(0), &ReplayConfig { bins: 1 });
        // The paper reports a maximum queue depth around 25 for CNS.
        assert!(
            report.max_queue_depth >= 15,
            "got {}",
            report.max_queue_depth
        );
        assert!(
            report.max_queue_depth <= 40,
            "got {}",
            report.max_queue_depth
        );
        assert_eq!(report.final_umq, 0);
    }

    #[test]
    fn cns_queues_collapse_with_bins() {
        let trace = generate_cns(0);
        let d1 = replay(&trace, &ReplayConfig { bins: 1 });
        let d32 = replay(&trace, &ReplayConfig { bins: 32 });
        let d128 = replay(&trace, &ReplayConfig { bins: 128 });
        assert!(d32.max_queue_depth < d1.max_queue_depth / 2);
        assert!(d128.max_queue_depth <= d32.max_queue_depth);
    }

    #[test]
    fn fillboundary_is_p2p_only_and_clean() {
        let report = replay(&generate_fillboundary(0), &ReplayConfig { bins: 32 });
        assert!((report.call_dist.p2p_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(report.match_stats.unexpected, 0);
        assert_eq!(report.final_prq, 0);
        assert_eq!(report.final_umq, 0);
    }

    #[test]
    fn multigrid_restriction_completes() {
        for trace in [generate_boxlib_mg(0), generate_multigrid(0)] {
            let report = replay(&trace, &ReplayConfig { bins: 32 });
            assert_eq!(report.final_prq, 0, "{}", trace.name);
            assert_eq!(report.final_umq, 0, "{}", trace.name);
            assert!(report.call_dist.collective > 0);
        }
    }
}
