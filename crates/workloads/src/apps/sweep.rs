//! **PARTISN** and **SNAP** — discrete-ordinates neutral-particle
//! transport (168 processes each in Table II).
//!
//! Communication pattern: the Koch-Baker-Alcouffe (KBA) wavefront sweep
//! over a 2-D process grid (12×14 for 168 ranks). For each of the four
//! sweep corners, every rank pre-posts receives from its two upstream
//! neighbors, then the sends propagate diagonal by diagonal. SNAP is "a
//! proxy application for the PARTISN communication pattern" (Table II), so
//! both share this generator — SNAP simply sweeps more energy groups.

use crate::builder::TraceBuilder;
use otm_base::{Rank, Tag};
use otm_trace::model::CollectiveKind;
use otm_trace::AppTrace;

/// Table II process count (both applications).
pub const PROCESSES: usize = 168;

const NX: usize = 12;
const NY: usize = 14;

/// The four sweep corners: direction of travel along x and y.
const CORNERS: [(isize, isize); 4] = [(1, 1), (-1, 1), (1, -1), (-1, -1)];

fn sweep_trace(name: &str, groups: u32) -> AppTrace {
    let mut b = TraceBuilder::new(name, PROCESSES);
    let coord = |rank: usize| (rank % NX, rank / NX);
    let index = |x: usize, y: usize| x + NX * y;
    for group in 0..groups {
        for (corner, &(dx, dy)) in CORNERS.iter().enumerate() {
            let tag = group * 8 + corner as u32;
            // Pre-post the upstream receives for this corner sweep.
            for rank in 0..PROCESSES {
                let (x, y) = coord(rank);
                let upx = x as isize - dx;
                let upy = y as isize - dy;
                if (0..NX as isize).contains(&upx) {
                    b.irecv(rank, Rank(index(upx as usize, y) as u32), Tag(tag), 64);
                }
                if (0..NY as isize).contains(&upy) {
                    b.irecv(rank, Rank(index(x, upy as usize) as u32), Tag(tag), 64);
                }
            }
            b.sync();
            // Wavefront: diagonals in sweep order; each rank forwards to
            // its downstream x and y neighbors.
            let diag_of = |x: usize, y: usize| {
                let sx = if dx > 0 { x } else { NX - 1 - x };
                let sy = if dy > 0 { y } else { NY - 1 - y };
                sx + sy
            };
            for diag in 0..(NX + NY - 1) {
                for rank in 0..PROCESSES {
                    let (x, y) = coord(rank);
                    if diag_of(x, y) != diag {
                        continue;
                    }
                    let downx = x as isize + dx;
                    let downy = y as isize + dy;
                    if (0..NX as isize).contains(&downx) {
                        b.isend(rank, index(downx as usize, y), tag, 64);
                    }
                    if (0..NY as isize).contains(&downy) {
                        b.isend(rank, index(x, downy as usize), tag, 64);
                    }
                }
                // Advance the wavefront clock.
                for rank in 0..PROCESSES {
                    b.compute(rank, 1e-6);
                }
            }
            for rank in 0..PROCESSES {
                b.waitall(rank);
            }
            b.sync();
        }
        b.collective(CollectiveKind::Allreduce); // convergence check
    }
    b.build()
}

/// Generates the PARTISN trace.
pub fn generate_partisn(_seed: u64) -> AppTrace {
    sweep_trace("PARTISN", 2)
}

/// Generates the SNAP trace (same pattern, more energy groups).
pub fn generate_snap(_seed: u64) -> AppTrace {
    sweep_trace("SNAP", 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_trace::{replay, ReplayConfig};

    #[test]
    fn traces_have_table2_process_counts() {
        assert_eq!(generate_partisn(0).processes(), PROCESSES);
        assert_eq!(generate_snap(0).processes(), PROCESSES);
    }

    #[test]
    fn wavefront_sweeps_complete_cleanly() {
        for trace in [generate_partisn(0), generate_snap(0)] {
            let report = replay(&trace, &ReplayConfig { bins: 32 });
            assert_eq!(report.final_prq, 0, "{}", trace.name);
            assert_eq!(report.final_umq, 0, "{}", trace.name);
            assert_eq!(
                report.match_stats.unexpected, 0,
                "{}: receives pre-posted",
                trace.name
            );
        }
    }

    #[test]
    fn snap_mirrors_partisn_with_more_groups() {
        let partisn = replay(&generate_partisn(0), &ReplayConfig { bins: 1 });
        let snap = replay(&generate_snap(0), &ReplayConfig { bins: 1 });
        // Same shape, scaled volume.
        assert!(snap.call_dist.p2p > partisn.call_dist.p2p);
        let ratio = snap.mean_queue_depth / partisn.mean_queue_depth.max(1e-9);
        assert!((0.4..2.5).contains(&ratio), "depth ratio {ratio}");
    }

    #[test]
    fn wavefront_ordering_keeps_queues_shallow_even_at_one_bin() {
        // Sweeps consume receives in wavefront order, so even the 1-bin
        // list stays near-empty — PARTISN/SNAP sit at the shallow end of
        // Fig. 7.
        let report = replay(&generate_partisn(0), &ReplayConfig { bins: 1 });
        assert!(
            report.mean_queue_depth < 1.0,
            "got {}",
            report.mean_queue_depth
        );
        assert!(report.max_queue_depth >= 1);
    }
}
