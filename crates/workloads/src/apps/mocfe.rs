//! **MOCFE** — Method of Characteristics reactor-transport proxy (64
//! processes in Table II).
//!
//! Communication pattern: angular flux is swept along characteristic rays —
//! pipelined sends along 1-D chains of the process grid — and per-iteration
//! results are gathered many-to-one to the root, which posts
//! `MPI_ANY_SOURCE` receives (the Gatherv-style fan-in the paper cites as a
//! matching hot spot). This generator is the set's main exerciser of
//! wildcard receives.

use crate::builder::{grid3d_dims, TraceBuilder};
use otm_base::envelope::SourceSel;
use otm_base::{Rank, Tag};
use otm_trace::model::CollectiveKind;
use otm_trace::AppTrace;

/// Table II process count.
pub const PROCESSES: usize = 64;

/// Generates the MOCFE trace.
pub fn generate(_seed: u64) -> AppTrace {
    let mut b = TraceBuilder::new("MOCFE", PROCESSES);
    let (nx, ny, nz) = grid3d_dims(PROCESSES);
    let iterations = 4;
    for it in 0..iterations {
        // Ray sweeps along +x chains: pre-post the upstream receive, then a
        // staggered forward pipeline of sends.
        let tag = it * 4;
        for rank in 0..PROCESSES {
            if rank % nx != 0 {
                b.irecv(rank, Rank((rank - 1) as u32), Tag(tag), 128);
            }
        }
        b.sync();
        for x in 0..nx - 1 {
            for rank in 0..PROCESSES {
                if rank % nx == x {
                    b.isend(rank, rank + 1, tag, 128);
                }
            }
            // Stagger the wavefront so downstream sends happen after
            // upstream data arrives.
            for rank in 0..PROCESSES {
                b.compute(rank, 2e-6);
            }
        }
        for rank in 0..PROCESSES {
            b.waitall(rank);
        }
        b.sync();

        // Many-to-one gather of iteration results (the Gatherv-style hot
        // spot of §I): the root pre-posts one receive per source rank in
        // rank order, but ranks finish their sweep in reverse order, so the
        // root's 1-bin queue is scanned deeply.
        let gtag = it * 4 + 1;
        for rank in 1..PROCESSES {
            b.irecv(0, Rank(rank as u32), Tag(gtag), 64);
        }
        b.sync();
        for rank in 1..PROCESSES {
            // Higher ranks finish their sweep segment earlier, so reports
            // arrive in reverse rank order.
            b.compute(rank, (PROCESSES - rank) as f64 * 1e-6);
            b.isend(rank, 0, gtag, 64);
            b.waitall(rank);
        }
        b.waitall(0);
        b.sync();

        // Diagnostics gather: the root accepts in completion order via
        // ANY_SOURCE receives (the wildcard usage MOCFE contributes to §V).
        let dtag = it * 4 + 2;
        for _ in 1..PROCESSES {
            b.irecv(0, SourceSel::Any, Tag(dtag), 16);
        }
        b.sync();
        for rank in 1..PROCESSES {
            b.isend(rank, 0, dtag, 16);
            b.waitall(rank);
        }
        b.waitall(0);
        b.sync();
        b.collective(CollectiveKind::Allreduce); // eigenvalue update
        let _ = (ny, nz);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_trace::{replay, ReplayConfig};

    #[test]
    fn trace_has_table2_process_count() {
        assert_eq!(generate(0).processes(), PROCESSES);
    }

    #[test]
    fn wildcard_receives_are_used() {
        let report = replay(&generate(0), &ReplayConfig { bins: 32 });
        assert!(
            report.tag_usage.wildcard_recv_fraction > 0.3,
            "ANY_SOURCE gather fan-in"
        );
    }

    #[test]
    fn sweeps_and_gathers_complete_cleanly() {
        let report = replay(&generate(0), &ReplayConfig { bins: 32 });
        assert_eq!(report.final_prq, 0);
        assert_eq!(report.final_umq, 0);
    }

    #[test]
    fn gather_fan_in_deepens_single_bin_queues() {
        // 63 ANY_SOURCE receives pending at the root: with one bin these
        // all sit in one list.
        let report = replay(&generate(0), &ReplayConfig { bins: 1 });
        assert!(
            report.max_queue_depth >= 30,
            "got {}",
            report.max_queue_depth
        );
    }
}
