//! **LULESH** — shock-hydrodynamics proxy (64 processes in Table II).
//!
//! Communication pattern: each timestep exchanges ghost zones with all 26
//! neighbors (faces, edges, corners) of a 4×4×4 process cube, with a
//! per-field tag, followed by an `MPI_Allreduce` for the timestep control.
//! The 26-wide receive fan-in per rank is what drives LULESH's deeper
//! 1-bin queues.

use crate::builder::{
    full_neighbors_3d, grid3d_dims, post_halo_receives, send_halo_phases, TraceBuilder,
};
use otm_trace::model::CollectiveKind;
use otm_trace::AppTrace;

/// Table II process count.
pub const PROCESSES: usize = 64;

/// Generates the LULESH trace.
pub fn generate(_seed: u64) -> AppTrace {
    let mut b = TraceBuilder::new("LULESH", PROCESSES);
    let dims = grid3d_dims(PROCESSES);
    let neighbors = move |r: usize| full_neighbors_3d(r, dims);
    let steps = 8;
    let fields = 3usize; // nodal mass, force, energy exchanges per step
                         // LULESH reuses the same (field, direction) tag window every timestep.
    for _step in 0..steps {
        // LULESH pre-posts the whole step's receives (all fields) before
        // sending anything: 78 receives in flight per rank.
        // One tag per (field, direction): 26 directions * 3 fields.
        let field_tag = |field: u32, d: usize| field * 32 + d as u32;
        for field in 0..fields as u32 {
            post_halo_receives(&mut b, field, &neighbors, &field_tag, 128);
        }
        b.sync();
        send_halo_phases(
            &mut b,
            &(0..fields as u32).collect::<Vec<_>>(),
            &neighbors,
            &field_tag,
            &|d| 25 - d,
            128,
        );
        b.sync();
        b.collective(CollectiveKind::Allreduce);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_trace::{replay, ReplayConfig};

    #[test]
    fn trace_has_table2_process_count() {
        assert_eq!(generate(0).processes(), PROCESSES);
    }

    #[test]
    fn exchanges_complete_cleanly() {
        let report = replay(&generate(0), &ReplayConfig { bins: 32 });
        assert_eq!(report.final_prq, 0);
        assert_eq!(report.final_umq, 0);
        assert_eq!(
            report.match_stats.unexpected, 0,
            "halo receives are pre-posted"
        );
    }

    #[test]
    fn one_bin_queues_are_deep_many_bins_shallow() {
        let trace = generate(0);
        let deep = replay(&trace, &ReplayConfig { bins: 1 });
        let shallow = replay(&trace, &ReplayConfig { bins: 128 });
        assert!(deep.mean_queue_depth > 4.0 * shallow.mean_queue_depth.max(0.05));
    }
}
