//! **CrystalRouter** — proxy for the Nek5000 crystal-router scalable
//! communication kernel (100 processes in Table II).
//!
//! Communication pattern: the crystal router moves arbitrary point-to-point
//! payloads through a recursive-halving (hypercube-style) schedule:
//! `log2(n)` stages in which every rank exchanges a combined buffer with
//! `rank XOR 2^k` (ranks whose partner falls outside the communicator skip
//! the stage). All traffic is p2p — one of the three p2p-exclusive
//! applications of Fig. 6.

use crate::builder::TraceBuilder;
use otm_base::{Rank, Tag};
use otm_trace::AppTrace;

/// Table II process count.
pub const PROCESSES: usize = 100;

/// Generates the CrystalRouter trace.
pub fn generate(_seed: u64) -> AppTrace {
    let mut b = TraceBuilder::new("CrystalRouter", PROCESSES);
    let rounds = 3; // three router invocations
    for round in 0..rounds {
        let mut stage = 0u32;
        let mut bit = 1usize;
        while bit < PROCESSES {
            let tag = round * 16 + stage;
            // Pre-post the stage's receives...
            for rank in 0..PROCESSES {
                let partner = rank ^ bit;
                if partner < PROCESSES {
                    b.irecv(rank, Rank(partner as u32), Tag(tag), 256);
                }
            }
            b.sync();
            // ...then exchange.
            for rank in 0..PROCESSES {
                let partner = rank ^ bit;
                if partner < PROCESSES {
                    b.isend(rank, partner, tag, 256);
                    b.waitall(rank);
                }
            }
            b.sync();
            bit <<= 1;
            stage += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_trace::{replay, ReplayConfig};

    #[test]
    fn trace_has_table2_process_count() {
        assert_eq!(generate(0).processes(), PROCESSES);
    }

    #[test]
    fn crystal_router_is_p2p_only() {
        let report = replay(&generate(0), &ReplayConfig { bins: 32 });
        assert!((report.call_dist.p2p_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hypercube_stages_complete_cleanly() {
        let report = replay(&generate(0), &ReplayConfig { bins: 32 });
        assert_eq!(report.final_prq, 0);
        assert_eq!(report.final_umq, 0);
        assert_eq!(report.match_stats.unexpected, 0);
    }

    #[test]
    fn pairwise_stages_keep_queues_shallow() {
        // One pending receive per rank per stage: even at 1 bin the queues
        // stay shallow — CrystalRouter sits at the low end of Fig. 7.
        let report = replay(&generate(0), &ReplayConfig { bins: 1 });
        assert!(
            report.mean_queue_depth < 2.0,
            "got {}",
            report.mean_queue_depth
        );
    }
}
