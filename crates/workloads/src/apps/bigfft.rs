//! **BigFFT** — distributed 3-D fast Fourier transform (1024 processes in
//! Table II).
//!
//! Communication pattern: the FFT transposes are implemented as p2p
//! all-to-all exchanges within rows and columns of a 32×32 process grid
//! (pencil decomposition). Every rank posts one receive per row peer, then
//! sends to every row peer, then the same along columns. BigFFT is one of
//! the p2p-only applications of Fig. 6, and its dense per-group fan-in is
//! exactly the "global communication pattern" the paper cites as matching-
//! misery-prone.

use crate::builder::TraceBuilder;
use otm_base::{Rank, Tag};
use otm_trace::AppTrace;

/// Table II process count.
pub const PROCESSES: usize = 1024;

const SIDE: usize = 32; // 32x32 pencil grid

/// Generates the BigFFT trace.
pub fn generate(_seed: u64) -> AppTrace {
    let mut b = TraceBuilder::new("BigFFT", PROCESSES);
    // One forward transform: a row transpose then a column transpose.
    for (phase, by_row) in [(0u32, true), (1u32, false)] {
        // Post all receives first (pre-posted transpose).
        for rank in 0..PROCESSES {
            let (row, col) = (rank / SIDE, rank % SIDE);
            for k in 0..SIDE {
                let peer = if by_row {
                    row * SIDE + k
                } else {
                    k * SIDE + col
                };
                if peer != rank {
                    b.irecv(rank, Rank(peer as u32), Tag(phase), 1024);
                }
            }
        }
        b.sync();
        // Senders stagger their peer loop starting after their own position
        // (the standard rotated all-to-all schedule). Each receiver then
        // sees its row's messages in an order different from its receive
        // posting order, which is what makes dense transposes scan deep
        // queues under 1-bin (traditional) matching.
        for rank in 0..PROCESSES {
            let (row, col) = (rank / SIDE, rank % SIDE);
            let me = if by_row { col } else { row };
            for kk in 1..SIDE {
                let k = (me + kk) % SIDE;
                let peer = if by_row {
                    row * SIDE + k
                } else {
                    k * SIDE + col
                };
                b.isend(rank, peer, phase, 1024);
            }
            b.waitall(rank);
        }
        b.sync();
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_trace::{replay, ReplayConfig};

    #[test]
    fn trace_has_table2_process_count() {
        assert_eq!(generate(0).processes(), PROCESSES);
    }

    #[test]
    fn bigfft_is_p2p_only() {
        let report = replay(&generate(0), &ReplayConfig { bins: 32 });
        assert!((report.call_dist.p2p_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(report.call_dist.collective, 0);
    }

    #[test]
    fn transpose_fan_in_drives_single_bin_depth() {
        let trace = generate(0);
        let deep = replay(&trace, &ReplayConfig { bins: 1 });
        // 31 same-tag receives pending per rank: deep scans at one bin.
        assert!(deep.mean_queue_depth > 3.0, "got {}", deep.mean_queue_depth);
        assert_eq!(deep.final_prq, 0);
        assert_eq!(deep.final_umq, 0);
    }
}
