//! One generator per Table II application, grouped by code family.
//!
//! Each module documents the communication pattern it reproduces and the
//! source of that pattern (the mini-app's published description). All
//! generators are deterministic given their seed and produce traces at the
//! Table II process counts.

pub mod amg;
pub mod amr;
pub mod bigfft;
pub mod boxlib;
pub mod crystal;
pub mod hilo;
pub mod lulesh;
pub mod minife;
pub mod mocfe;
pub mod nekbone;
pub mod sweep;
