//! **Nekbone** — Nek5000 Poisson-solver proxy (64 processes in Table II).
//!
//! Communication pattern: conjugate gradient with a spectral-element
//! gather-scatter. Each iteration exchanges shared-degree-of-freedom data
//! with the face neighbors of the process cube twice (gather then scatter,
//! distinct tag spaces) and reduces the CG scalars. Compared to MiniFE the
//! per-iteration traffic is doubled but equally well spread.

use crate::builder::{face_neighbors_3d, grid3d_dims, halo_round, TraceBuilder};
use otm_trace::model::CollectiveKind;
use otm_trace::AppTrace;

/// Table II process count.
pub const PROCESSES: usize = 64;

/// Generates the Nekbone trace.
pub fn generate(_seed: u64) -> AppTrace {
    let mut b = TraceBuilder::new("Nekbone", PROCESSES);
    let dims = grid3d_dims(PROCESSES);
    let neighbors = move |r: usize| face_neighbors_3d(r, dims);
    let iterations = 5;
    for it in 0..iterations {
        // Gather-scatter: two exchanges per iteration.
        halo_round(
            &mut b,
            it,
            &neighbors,
            &|it, d| 100 + it * 16 + d as u32,
            &|d| d ^ 1,
            256,
        );
        halo_round(
            &mut b,
            it,
            &neighbors,
            &|it, d| 200 + it * 16 + d as u32,
            &|d| d ^ 1,
            256,
        );
        b.collective(CollectiveKind::Allreduce);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_trace::{replay, ReplayConfig};

    #[test]
    fn trace_has_table2_process_count() {
        assert_eq!(generate(0).processes(), PROCESSES);
    }

    #[test]
    fn gather_scatter_completes_cleanly() {
        let report = replay(&generate(0), &ReplayConfig { bins: 32 });
        assert_eq!(report.final_prq, 0);
        assert_eq!(report.final_umq, 0);
        assert_eq!(report.match_stats.unexpected, 0);
    }

    #[test]
    fn well_spread_tags_keep_depth_low_at_128_bins() {
        let report = replay(&generate(0), &ReplayConfig { bins: 128 });
        assert!(
            report.mean_queue_depth < 0.6,
            "got {}",
            report.mean_queue_depth
        );
    }
}
