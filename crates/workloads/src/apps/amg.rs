//! **AMG** — algebraic multigrid linear solver (8 processes in Table II).
//!
//! Communication pattern: V-cycles over a grid hierarchy. On each level the
//! active ranks exchange boundary data with their neighbors (fewer ranks
//! participate on coarser levels, and each level uses its own tag), then an
//! `MPI_Allreduce` computes the residual norm. This gives p2p-dominated
//! traffic with a modest collective share and small per-level neighbor
//! sets — the low-queue-depth behaviour the paper reports.

use crate::builder::{face_neighbors_3d, grid3d_dims, TraceBuilder};
use otm_base::{Rank, Tag};
use otm_trace::model::CollectiveKind;
use otm_trace::AppTrace;

/// Table II process count.
pub const PROCESSES: usize = 8;

/// Generates the AMG trace.
pub fn generate(_seed: u64) -> AppTrace {
    let mut b = TraceBuilder::new("AMG", PROCESSES);
    let dims = grid3d_dims(PROCESSES);
    let cycles = 6;
    let levels = 3;
    for cycle in 0..cycles {
        for level in 0..levels {
            // Coarser levels involve every 2^level-th rank.
            let stride = 1usize << level;
            let active: Vec<usize> = (0..PROCESSES).step_by(stride).collect();
            let tag = cycle * 10 + level as u32;
            // Boundary exchange among active ranks (face neighbors mapped
            // through the stride).
            for &rank in &active {
                for &peer in &face_neighbors_3d(rank / stride, grid3d_dims(active.len())) {
                    let peer = active[peer];
                    if peer != rank {
                        b.irecv(rank, Rank(peer as u32), Tag(tag), 64 >> level);
                    }
                }
            }
            b.sync();
            for &rank in &active {
                let mut peers: Vec<usize> =
                    face_neighbors_3d(rank / stride, grid3d_dims(active.len()))
                        .into_iter()
                        .map(|p| active[p])
                        .filter(|&p| p != rank)
                        .collect();
                // Staggered send order (see builder::send_halo_phases).
                peers.sort_by_key(|&p| {
                    otm_base::hash::mix64((rank as u64) << 32 | p as u64 ^ u64::from(tag))
                });
                for peer in peers {
                    b.isend(rank, peer, tag, 64 >> level);
                }
                b.waitall(rank);
            }
            b.sync();
        }
        b.collective(CollectiveKind::Allreduce);
        let _ = dims;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_trace::{replay, ReplayConfig};

    #[test]
    fn trace_has_table2_process_count() {
        assert_eq!(generate(0).processes(), PROCESSES);
    }

    #[test]
    fn pattern_is_p2p_dominated_with_collectives() {
        let report = replay(&generate(0), &ReplayConfig::default());
        assert!(report.call_dist.p2p_fraction() > 0.5);
        assert!(report.call_dist.collective > 0);
        assert_eq!(report.call_dist.one_sided, 0);
    }

    #[test]
    fn exchanges_complete_cleanly() {
        let report = replay(&generate(0), &ReplayConfig::default());
        assert_eq!(report.final_prq, 0, "all receives consumed");
        assert_eq!(report.final_umq, 0, "all messages delivered");
    }
}
