//! **HILO** and **HILO 2D** — neutron transport evaluation suite (256
//! processes each in Table II).
//!
//! Fig. 6 shows two applications relying entirely on collectives; the HILO
//! pair is that family. The moment-based hybrid scheme reduces its
//! high-order/low-order coupling through reductions and broadcasts rather
//! than point-to-point halos. HILO 2D (the multinode 2-D variant) adds
//! all-to-all moment redistribution.

use crate::builder::TraceBuilder;
use otm_trace::model::CollectiveKind;
use otm_trace::AppTrace;

/// Table II process count (both variants).
pub const PROCESSES: usize = 256;

/// Generates the HILO trace (collectives only).
pub fn generate_hilo(_seed: u64) -> AppTrace {
    let mut b = TraceBuilder::new("HILO", PROCESSES);
    for _outer in 0..6 {
        b.collective(CollectiveKind::Bcast); // distribute low-order solution
        for _inner in 0..3 {
            b.collective(CollectiveKind::Allreduce); // residual + moments
        }
        b.collective(CollectiveKind::Reduce); // gather diagnostics
        b.collective(CollectiveKind::Barrier);
    }
    b.build()
}

/// Generates the HILO 2D trace (collectives only, with redistribution).
pub fn generate_hilo2d(_seed: u64) -> AppTrace {
    let mut b = TraceBuilder::new("HILO 2D", PROCESSES);
    for _outer in 0..5 {
        b.collective(CollectiveKind::Bcast);
        b.collective(CollectiveKind::Alltoall); // moment redistribution
        for _inner in 0..3 {
            b.collective(CollectiveKind::Allreduce);
        }
        b.collective(CollectiveKind::Allgather);
        b.collective(CollectiveKind::Barrier);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_trace::{replay, ReplayConfig};

    #[test]
    fn traces_have_table2_process_counts() {
        assert_eq!(generate_hilo(0).processes(), PROCESSES);
        assert_eq!(generate_hilo2d(0).processes(), PROCESSES);
    }

    #[test]
    fn hilo_is_collectives_only() {
        for trace in [generate_hilo(0), generate_hilo2d(0)] {
            let report = replay(&trace, &ReplayConfig { bins: 32 });
            assert_eq!(report.call_dist.p2p, 0, "{}", trace.name);
            assert!((report.call_dist.collective_fraction() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn no_matching_activity_at_all() {
        let report = replay(&generate_hilo(0), &ReplayConfig { bins: 1 });
        assert_eq!(report.mean_queue_depth, 0.0);
        assert_eq!(report.max_queue_depth, 0);
    }
}
