//! Synthetic MPI communication workloads reproducing the matching behaviour
//! of the 16 DOE mini-app traces of Table II.
//!
//! The NERSC "Characterization of DOE mini-apps" DUMPI traces the paper
//! analyzes are multi-gigabyte and not redistributable, so this crate
//! regenerates each application's *communication pattern* from its published
//! description: who sends to whom, with which tags, when receives are
//! posted relative to sends, and which collectives punctuate the exchanges.
//! The Fig. 6 / Fig. 7 statistics depend only on this envelope stream, not
//! on the computation (see DESIGN.md §1 for the substitution argument).
//!
//! Every generator produces an [`otm_trace::AppTrace`] at the Table II
//! process count; [`catalog::catalog`] enumerates all sixteen. Generators
//! are deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod builder;
pub mod catalog;

pub use builder::TraceBuilder;
pub use catalog::{catalog, AppSpec};
