//! Trace construction utilities shared by all application generators.
//!
//! A [`TraceBuilder`] keeps one logical clock per rank. Every recorded
//! operation advances its rank's clock by a small step, so the replay
//! stage's time-merged processing (§V-A) observes a realistic interleaving:
//! receives posted before the matching sends arrive are expected; sends
//! racing ahead of their receives become unexpected messages. Collectives
//! synchronize clocks like a barrier would.

use otm_base::envelope::{SourceSel, TagSel};
use otm_base::{CommId, Rank, Tag};
use otm_trace::model::{CollectiveKind, MpiOp, RankTrace, ReqId, TimedOp};
use otm_trace::AppTrace;

/// Per-operation clock step, in seconds.
const OP_DT: f64 = 1e-6;

struct RankState {
    clock: f64,
    ops: Vec<TimedOp>,
    next_req: u32,
    pending_reqs: u32,
}

/// Incremental builder for an [`AppTrace`] (see module docs).
///
/// ```
/// use otm_workloads::TraceBuilder;
/// use otm_base::{Rank, Tag};
///
/// let mut b = TraceBuilder::new("two-rank", 2);
/// b.irecv(1, Rank(0), Tag(7), 16);
/// b.sync();
/// b.isend(0, 1, 7, 16);
/// b.waitall(1);
/// let trace = b.build();
/// assert_eq!(trace.processes(), 2);
/// let report = otm_trace::replay(&trace, &otm_trace::ReplayConfig::default());
/// assert_eq!(report.match_stats.matched_on_arrival, 1);
/// ```
pub struct TraceBuilder {
    name: String,
    ranks: Vec<RankState>,
}

impl TraceBuilder {
    /// Starts a trace for `nprocs` ranks.
    pub fn new(name: impl Into<String>, nprocs: usize) -> Self {
        TraceBuilder {
            name: name.into(),
            ranks: (0..nprocs)
                .map(|_| RankState {
                    clock: 0.0,
                    ops: Vec::new(),
                    next_req: 0,
                    pending_reqs: 0,
                })
                .collect(),
        }
    }

    /// Number of ranks.
    pub fn nprocs(&self) -> usize {
        self.ranks.len()
    }

    fn push(&mut self, rank: usize, op: MpiOp) {
        let r = &mut self.ranks[rank];
        r.clock += OP_DT;
        r.ops.push(TimedOp { time: r.clock, op });
    }

    /// Advances one rank's clock without recording an operation (models
    /// local computation).
    pub fn compute(&mut self, rank: usize, seconds: f64) {
        self.ranks[rank].clock += seconds;
    }

    /// Posts a nonblocking receive and returns its request id.
    pub fn irecv(
        &mut self,
        rank: usize,
        src: impl Into<SourceSel>,
        tag: impl Into<TagSel>,
        count: u64,
    ) -> ReqId {
        let request = ReqId(self.ranks[rank].next_req);
        self.ranks[rank].next_req += 1;
        self.ranks[rank].pending_reqs += 1;
        self.push(
            rank,
            MpiOp::Irecv {
                src: src.into(),
                tag: tag.into(),
                comm: CommId::WORLD,
                count,
                request,
            },
        );
        request
    }

    /// Issues a nonblocking send and returns its request id.
    pub fn isend(&mut self, rank: usize, dest: usize, tag: u32, count: u64) -> ReqId {
        let request = ReqId(self.ranks[rank].next_req);
        self.ranks[rank].next_req += 1;
        self.ranks[rank].pending_reqs += 1;
        self.push(
            rank,
            MpiOp::Isend {
                dest: Rank(dest as u32),
                tag: Tag(tag),
                comm: CommId::WORLD,
                count,
                request,
            },
        );
        request
    }

    /// Issues a blocking send.
    pub fn send(&mut self, rank: usize, dest: usize, tag: u32, count: u64) {
        self.push(
            rank,
            MpiOp::Send {
                dest: Rank(dest as u32),
                tag: Tag(tag),
                comm: CommId::WORLD,
                count,
            },
        );
    }

    /// Issues a blocking receive.
    pub fn recv(
        &mut self,
        rank: usize,
        src: impl Into<SourceSel>,
        tag: impl Into<TagSel>,
        count: u64,
    ) {
        self.push(
            rank,
            MpiOp::Recv {
                src: src.into(),
                tag: tag.into(),
                comm: CommId::WORLD,
                count,
            },
        );
    }

    /// Waits on all of the rank's outstanding nonblocking requests.
    pub fn waitall(&mut self, rank: usize) {
        let nreqs = self.ranks[rank].pending_reqs;
        self.ranks[rank].pending_reqs = 0;
        self.push(rank, MpiOp::Waitall { nreqs });
    }

    /// Records a collective on every rank and synchronizes their clocks,
    /// like the barrier semantics most collectives imply for tracing.
    pub fn collective(&mut self, kind: CollectiveKind) {
        let sync = self.ranks.iter().map(|r| r.clock).fold(0.0f64, f64::max) + OP_DT;
        for r in &mut self.ranks {
            r.clock = sync;
            r.ops.push(TimedOp {
                time: r.clock,
                op: MpiOp::Collective {
                    kind,
                    comm: CommId::WORLD,
                },
            });
        }
    }

    /// Synchronizes all clocks to the global maximum without recording an
    /// operation (models an application-level phase boundary).
    pub fn sync(&mut self) {
        let sync = self.ranks.iter().map(|r| r.clock).fold(0.0f64, f64::max);
        for r in &mut self.ranks {
            r.clock = sync;
        }
    }

    /// Skews one rank's clock forward — used to create unexpected-message
    /// pressure (a late poster) or wavefront pipelines.
    pub fn delay(&mut self, rank: usize, seconds: f64) {
        self.ranks[rank].clock += seconds;
    }

    /// Finishes the trace.
    pub fn build(self) -> AppTrace {
        AppTrace {
            name: self.name,
            ranks: self
                .ranks
                .into_iter()
                .enumerate()
                .map(|(i, r)| RankTrace {
                    rank: Rank(i as u32),
                    ops: r.ops,
                })
                .collect(),
        }
    }
}

/// A neighbor-exchange round used by the stencil-style applications: every
/// rank posts one receive per neighbor (pre-posted), synchronizes, then
/// sends to each neighbor and waits.
///
/// `neighbors(rank)` returns the peer list; `tag(round, direction_index)`
/// the tag for each direction, where the direction index is the
/// *receiver's*. `opposite(d)` maps a sender's direction index to the
/// receiver's (e.g. `d ^ 1` for ±-paired lists), so that the tag a sender
/// attaches is the one the peer's receive expects. The pre-post discipline
/// keeps unexpected messages rare, matching what the paper observes for the
/// DOE mini-apps.
pub fn halo_round(
    b: &mut TraceBuilder,
    round: u32,
    neighbors: &dyn Fn(usize) -> Vec<usize>,
    tag: &dyn Fn(u32, usize) -> u32,
    opposite: &dyn Fn(usize) -> usize,
    count: u64,
) {
    post_halo_receives(b, round, neighbors, tag, count);
    b.sync();
    send_halo(b, round, neighbors, tag, opposite, count);
    b.sync();
}

/// The receive-posting half of [`halo_round`]; applications that pre-post
/// several exchange phases call this for each phase before any
/// [`send_halo`].
pub fn post_halo_receives(
    b: &mut TraceBuilder,
    round: u32,
    neighbors: &dyn Fn(usize) -> Vec<usize>,
    tag: &dyn Fn(u32, usize) -> u32,
    count: u64,
) {
    let n = b.nprocs();
    for rank in 0..n {
        for (d, &peer) in neighbors(rank).iter().enumerate() {
            b.irecv(rank, Rank(peer as u32), Tag(tag(round, d)), count);
        }
    }
}

/// The sending half of [`halo_round`]. Each sender walks its direction list
/// in a per-(rank, round) pseudo-random order — real codes stagger their
/// send loops to avoid hot-spotting a direction, and the resulting
/// out-of-order arrivals are exactly what makes 1-bin (traditional)
/// matching scan deep queues on halo exchanges.
pub fn send_halo(
    b: &mut TraceBuilder,
    round: u32,
    neighbors: &dyn Fn(usize) -> Vec<usize>,
    tag: &dyn Fn(u32, usize) -> u32,
    opposite: &dyn Fn(usize) -> usize,
    count: u64,
) {
    send_halo_phases(b, &[round], neighbors, tag, opposite, count);
}

/// Multi-phase variant of [`send_halo`]: when an application pre-posts the
/// receives of several exchange phases (LULESH fields, FillBoundary fabs),
/// the sends of all phases interleave — each rank walks the full
/// `(phase, direction)` cross product in its own pseudo-random order. That
/// is what lets the 1-bin queue depth grow with the *total* number of
/// in-flight receives rather than one phase's worth.
pub fn send_halo_phases(
    b: &mut TraceBuilder,
    phases: &[u32],
    neighbors: &dyn Fn(usize) -> Vec<usize>,
    tag: &dyn Fn(u32, usize) -> u32,
    opposite: &dyn Fn(usize) -> usize,
    count: u64,
) {
    let n = b.nprocs();
    for rank in 0..n {
        let peers = neighbors(rank);
        let mut order: Vec<(u32, usize)> = phases
            .iter()
            .flat_map(|&p| (0..peers.len()).map(move |d| (p, d)))
            .collect();
        // Cheap multiplicative shuffle keyed on (rank, phase, direction):
        // enough disorder without an RNG dependency here.
        let key = (rank as u64).wrapping_mul(0x9e37_79b9);
        order.sort_by_key(|&(p, d)| {
            otm_base::hash::mix64(key ^ (u64::from(p) << 48) ^ ((d as u64) << 32))
        });
        for (p, d) in order {
            b.isend(rank, peers[d], tag(p, opposite(d)), count);
        }
        b.waitall(rank);
    }
}

/// Ranks arranged on a periodic 3-D grid; returns the grid dims closest to
/// a cube for `n` ranks (n must have an integer cube-ish factorization;
/// falls back to a 1-D ring decomposition otherwise).
pub fn grid3d_dims(n: usize) -> (usize, usize, usize) {
    let mut best = (n, 1, 1);
    let mut best_surface = usize::MAX;
    for x in 1..=n {
        if n % x != 0 {
            continue;
        }
        let rest = n / x;
        for y in 1..=rest {
            if rest % y != 0 {
                continue;
            }
            let z = rest / y;
            let surface = x * y + y * z + x * z;
            if surface < best_surface {
                best_surface = surface;
                best = (x, y, z);
            }
        }
    }
    best
}

/// The six face neighbors of `rank` on a periodic 3-D grid.
pub fn face_neighbors_3d(rank: usize, dims: (usize, usize, usize)) -> Vec<usize> {
    let (nx, ny, nz) = dims;
    let x = rank % nx;
    let y = (rank / nx) % ny;
    let z = rank / (nx * ny);
    let idx = |x: usize, y: usize, z: usize| x + nx * (y + ny * z);
    vec![
        idx((x + 1) % nx, y, z),
        idx((x + nx - 1) % nx, y, z),
        idx(x, (y + 1) % ny, z),
        idx(x, (y + ny - 1) % ny, z),
        idx(x, y, (z + 1) % nz),
        idx(x, y, (z + nz - 1) % nz),
    ]
}

/// All 26 neighbors (faces, edges, corners) on a periodic 3-D grid.
pub fn full_neighbors_3d(rank: usize, dims: (usize, usize, usize)) -> Vec<usize> {
    let (nx, ny, nz) = dims;
    let x = rank % nx;
    let y = (rank / nx) % ny;
    let z = rank / (nx * ny);
    let mut out = Vec::with_capacity(26);
    for dz in [nz - 1, 0, 1] {
        for dy in [ny - 1, 0, 1] {
            for dx in [nx - 1, 0, 1] {
                if dx == 0 && dy == 0 && dz == 0 {
                    continue;
                }
                out.push(((x + dx) % nx) + nx * (((y + dy) % ny) + ny * ((z + dz) % nz)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_trace::model::CallKind;

    #[test]
    fn clocks_advance_per_operation() {
        let mut b = TraceBuilder::new("t", 2);
        b.isend(0, 1, 0, 1);
        b.isend(0, 1, 1, 1);
        let trace = b.build();
        let ops = &trace.ranks[0].ops;
        assert!(ops[0].time < ops[1].time);
    }

    #[test]
    fn collective_synchronizes_clocks() {
        let mut b = TraceBuilder::new("t", 3);
        b.compute(1, 5.0);
        b.collective(CollectiveKind::Allreduce);
        let trace = b.build();
        let times: Vec<f64> = trace.ranks.iter().map(|r| r.ops[0].time).collect();
        assert!(times.iter().all(|&t| (t - times[0]).abs() < 1e-12));
        assert!(times[0] > 5.0);
    }

    #[test]
    fn waitall_counts_outstanding_requests() {
        let mut b = TraceBuilder::new("t", 2);
        b.irecv(0, Rank(1), Tag(0), 1);
        b.isend(0, 1, 0, 1);
        b.waitall(0);
        let trace = b.build();
        let last = trace.ranks[0].ops.last().unwrap();
        assert!(matches!(last.op, MpiOp::Waitall { nreqs: 2 }));
    }

    #[test]
    fn halo_round_preposts_receives() {
        let mut b = TraceBuilder::new("t", 4);
        let ring = |r: usize| vec![(r + 1) % 4, (r + 3) % 4];
        halo_round(
            &mut b,
            0,
            &ring,
            &|round, d| round * 10 + d as u32,
            &|d| d ^ 1,
            8,
        );
        let trace = b.build();
        // Each rank: 2 receives, 2 sends, 1 waitall.
        for r in &trace.ranks {
            let recvs = r
                .ops
                .iter()
                .filter(|o| matches!(o.op, MpiOp::Irecv { .. }))
                .count();
            let sends = r
                .ops
                .iter()
                .filter(|o| matches!(o.op, MpiOp::Isend { .. }))
                .count();
            assert_eq!((recvs, sends), (2, 2));
            // Receives precede sends in time.
            let last_recv = r
                .ops
                .iter()
                .filter(|o| matches!(o.op, MpiOp::Irecv { .. }))
                .map(|o| o.time)
                .fold(0.0f64, f64::max);
            let first_send = r
                .ops
                .iter()
                .filter(|o| matches!(o.op, MpiOp::Isend { .. }))
                .map(|o| o.time)
                .fold(f64::INFINITY, f64::min);
            assert!(last_recv < first_send);
        }
        // The replay must see zero unexpected messages.
        let report = otm_trace::replay(&trace, &otm_trace::ReplayConfig::default());
        assert_eq!(report.match_stats.unexpected, 0);
        assert_eq!(report.final_prq, 0);
    }

    #[test]
    fn grid_dims_factorize_near_cubes() {
        assert_eq!(grid3d_dims(64), (4, 4, 4));
        assert_eq!(grid3d_dims(8), (2, 2, 2));
        let (x, y, z) = grid3d_dims(1000);
        assert_eq!(x * y * z, 1000);
        assert_eq!((x, y, z), (10, 10, 10));
    }

    #[test]
    fn face_neighbors_are_symmetric() {
        let dims = grid3d_dims(64);
        for rank in 0..64 {
            for &peer in &face_neighbors_3d(rank, dims) {
                assert!(
                    face_neighbors_3d(peer, dims).contains(&rank),
                    "rank {rank} peer {peer} not symmetric"
                );
            }
        }
    }

    #[test]
    fn full_neighbors_count_is_26_when_grid_is_large_enough() {
        let dims = grid3d_dims(64); // 4x4x4: all 26 distinct
        let n: std::collections::HashSet<usize> = full_neighbors_3d(0, dims).into_iter().collect();
        assert_eq!(n.len(), 26);
    }

    #[test]
    fn progress_ops_are_classified_as_progress() {
        let mut b = TraceBuilder::new("t", 1);
        b.irecv(0, SourceSel::Any, TagSel::Any, 1);
        b.waitall(0);
        let trace = b.build();
        assert_eq!(trace.ranks[0].ops[1].op.kind(), CallKind::Progress);
    }
}
