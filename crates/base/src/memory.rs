//! The analytic DPA memory-footprint model of §IV-E.
//!
//! The paper's accounting: each bin holds a 4-byte remove lock plus two
//! 8-byte pointers (head and tail of the chained queue), 20 bytes per bin;
//! the three hash-table indexes at 128 bins each therefore cost 7.5 KiB.
//! Each receive descriptor is 64 bytes, so 8 K simultaneously posted
//! receives need about 520 KiB of DPA memory — to be compared with the
//! BlueField-3 DPA caches (L2 1.5 MiB, L3 3 MiB).

use serde::{Deserialize, Serialize};

/// Bytes per hash-table bin: a 4-byte remove lock plus head and tail
/// pointers at 8 bytes each (§IV-E).
pub const BIN_BYTES: u64 = 4 + 8 + 8;

/// Bytes per receive descriptor (§IV-E).
pub const DESCRIPTOR_BYTES: u64 = 64;

/// Number of binned hash-table indexes (no-wildcard, source-wildcard,
/// tag-wildcard); the both-wildcard list has no bins.
pub const INDEX_TABLES: u64 = 3;

/// BlueField-3 DPA L2 cache capacity (§IV-E).
pub const DPA_L2_BYTES: u64 = 3 * 1024 * 1024 / 2; // 1.5 MiB

/// BlueField-3 DPA L3 cache capacity (§IV-E).
pub const DPA_L3_BYTES: u64 = 3 * 1024 * 1024; // 3 MiB

/// Memory footprint of one communicator's matching state on the DPA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Footprint {
    /// Bytes consumed by the three binned index tables.
    pub index_tables: u64,
    /// Bytes consumed by the receive descriptor table.
    pub descriptors: u64,
}

impl Footprint {
    /// Computes the footprint for `bins` bins per table and `max_receives`
    /// simultaneously posted receives.
    pub fn compute(bins: usize, max_receives: usize) -> Footprint {
        Footprint {
            index_tables: INDEX_TABLES * BIN_BYTES * bins as u64,
            descriptors: DESCRIPTOR_BYTES * max_receives as u64,
        }
    }

    /// Total bytes.
    #[inline]
    pub fn total(&self) -> u64 {
        self.index_tables + self.descriptors
    }

    /// Whether the state fits in the DPA L2 cache.
    #[inline]
    pub fn fits_l2(&self) -> bool {
        self.total() <= DPA_L2_BYTES
    }

    /// Whether the state fits in the DPA L3 cache.
    #[inline]
    pub fn fits_l3(&self) -> bool {
        self.total() <= DPA_L3_BYTES
    }
}

impl std::fmt::Display for Footprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1} KiB (tables {:.1} KiB + descriptors {:.1} KiB)",
            self.total() as f64 / 1024.0,
            self.index_tables as f64 / 1024.0,
            self.descriptors as f64 / 1024.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_is_twenty_bytes() {
        // "totalling 20 bytes per bin" (§IV-E).
        assert_eq!(BIN_BYTES, 20);
    }

    #[test]
    fn paper_number_128_bins_is_7_5_kib() {
        // "with the three index tables of our approach, this results in a
        // total cost of 7.5 KiB for 128 bins" (§IV-E).
        let fp = Footprint::compute(128, 0);
        assert_eq!(fp.index_tables, 7680);
        assert_eq!(fp.index_tables as f64 / 1024.0, 7.5);
    }

    #[test]
    fn paper_number_8k_receives_is_about_520_kib() {
        // "to support 8 K receives (posted at the same time), we need to
        // allocate about 520 KiB of DPA memory" (§IV-E). 8192 * 64 B = 512 KiB
        // of descriptors plus the 7.5 KiB of tables = 519.5 KiB ≈ 520 KiB.
        let fp = Footprint::compute(128, 8 * 1024);
        assert_eq!(fp.descriptors, 512 * 1024);
        let total_kib = fp.total() as f64 / 1024.0;
        assert!((total_kib - 519.5).abs() < 1e-9, "got {total_kib} KiB");
        assert!(total_kib < 520.5);
    }

    #[test]
    fn prototype_state_fits_the_l2_cache() {
        // The Fig. 8 prototype: 2048 bins, 1024 in-flight receives.
        let fp = Footprint::compute(2048, 1024);
        assert!(fp.fits_l2(), "prototype footprint {fp} exceeds L2");
    }

    #[test]
    fn eight_k_receives_fit_l2_and_l3() {
        let fp = Footprint::compute(128, 8 * 1024);
        assert!(fp.fits_l2());
        assert!(fp.fits_l3());
    }

    #[test]
    fn cache_capacities_match_bluefield3() {
        assert_eq!(DPA_L2_BYTES, 1_572_864); // 1.5 MiB
        assert_eq!(DPA_L3_BYTES, 3_145_728); // 3 MiB
    }

    #[test]
    fn footprint_grows_linearly_in_both_parameters() {
        let a = Footprint::compute(100, 100);
        let b = Footprint::compute(200, 100);
        let c = Footprint::compute(100, 200);
        assert_eq!(b.index_tables, 2 * a.index_tables);
        assert_eq!(b.descriptors, a.descriptors);
        assert_eq!(c.descriptors, 2 * a.descriptors);
        assert_eq!(c.index_tables, a.index_tables);
    }

    #[test]
    fn display_reports_kib() {
        let fp = Footprint::compute(128, 8 * 1024);
        let s = fp.to_string();
        assert!(s.contains("519.5 KiB"), "got {s}");
    }
}
