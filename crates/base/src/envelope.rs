//! Message envelopes and receive patterns with MPI wildcard semantics.
//!
//! An [`Envelope`] is what travels with a message: a fully-defined
//! *(source, tag, communicator)* triple — "the MPI specification does not
//! allow messages with wildcards" (§IV-C). A [`ReceivePattern`] is what a
//! posted receive matches on, where the source and/or the tag may be the
//! wildcard. The pattern's [`WildcardClass`] selects which of the four index
//! structures of §III-B the receive is stored in.

use crate::types::{CommId, Rank, Tag};
use serde::{Deserialize, Serialize};

/// Source selector of a receive: a concrete rank or `MPI_ANY_SOURCE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourceSel {
    /// Match messages from any source rank (`MPI_ANY_SOURCE`).
    Any,
    /// Match only messages from this rank.
    Rank(Rank),
}

impl SourceSel {
    /// Returns `true` if this selector accepts the given source rank.
    #[inline]
    pub fn accepts(self, src: Rank) -> bool {
        match self {
            SourceSel::Any => true,
            SourceSel::Rank(r) => r == src,
        }
    }

    /// Returns `true` if this selector is the wildcard.
    #[inline]
    pub fn is_wild(self) -> bool {
        matches!(self, SourceSel::Any)
    }
}

impl From<Rank> for SourceSel {
    fn from(r: Rank) -> Self {
        SourceSel::Rank(r)
    }
}

/// Tag selector of a receive: a concrete tag or `MPI_ANY_TAG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TagSel {
    /// Match messages with any tag (`MPI_ANY_TAG`).
    Any,
    /// Match only messages with this tag.
    Tag(Tag),
}

impl TagSel {
    /// Returns `true` if this selector accepts the given tag.
    #[inline]
    pub fn accepts(self, tag: Tag) -> bool {
        match self {
            TagSel::Any => true,
            TagSel::Tag(t) => t == tag,
        }
    }

    /// Returns `true` if this selector is the wildcard.
    #[inline]
    pub fn is_wild(self) -> bool {
        matches!(self, TagSel::Any)
    }
}

impl From<Tag> for TagSel {
    fn from(t: Tag) -> Self {
        TagSel::Tag(t)
    }
}

/// The fully-defined matching triple carried by every incoming message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Envelope {
    /// Rank of the sending process.
    pub src: Rank,
    /// User-defined message tag.
    pub tag: Tag,
    /// Communicator the message was sent on.
    pub comm: CommId,
}

impl Envelope {
    /// Creates an envelope on the given communicator.
    #[inline]
    pub fn new(src: Rank, tag: Tag, comm: CommId) -> Self {
        Envelope { src, tag, comm }
    }

    /// Creates an envelope on `MPI_COMM_WORLD`.
    #[inline]
    pub fn world(src: Rank, tag: Tag) -> Self {
        Envelope::new(src, tag, CommId::WORLD)
    }
}

impl std::fmt::Display for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.src, self.tag, self.comm)
    }
}

/// The four receive index classes of §III-B.
///
/// A posted receive is indexed in exactly one of the four data structures
/// according to which wildcards it uses; an incoming message must search all
/// four with the appropriate keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WildcardClass {
    /// No wildcards: indexed by `hash(src, tag)`.
    None,
    /// `MPI_ANY_SOURCE` only: indexed by `hash(tag)`.
    SrcWild,
    /// `MPI_ANY_TAG` only: indexed by `hash(src)`.
    TagWild,
    /// Both wildcards: kept in a single ordered list.
    BothWild,
}

impl WildcardClass {
    /// All four classes, in index order. Useful for iterating search state.
    pub const ALL: [WildcardClass; 4] = [
        WildcardClass::None,
        WildcardClass::SrcWild,
        WildcardClass::TagWild,
        WildcardClass::BothWild,
    ];

    /// A compact array index (0..4) for per-class tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            WildcardClass::None => 0,
            WildcardClass::SrcWild => 1,
            WildcardClass::TagWild => 2,
            WildcardClass::BothWild => 3,
        }
    }
}

/// What a posted receive matches on: wildcard-capable source and tag
/// selectors plus a concrete communicator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReceivePattern {
    /// Source selector (`MPI_ANY_SOURCE` or a concrete rank).
    pub src: SourceSel,
    /// Tag selector (`MPI_ANY_TAG` or a concrete tag).
    pub tag: TagSel,
    /// Communicator the receive was posted on. Never a wildcard in MPI.
    pub comm: CommId,
}

impl ReceivePattern {
    /// Creates a pattern on the given communicator.
    #[inline]
    pub fn new(src: impl Into<SourceSel>, tag: impl Into<TagSel>, comm: CommId) -> Self {
        ReceivePattern {
            src: src.into(),
            tag: tag.into(),
            comm,
        }
    }

    /// Creates a fully-specified pattern (no wildcards) on `MPI_COMM_WORLD`.
    #[inline]
    pub fn exact(src: Rank, tag: Tag) -> Self {
        ReceivePattern::new(src, tag, CommId::WORLD)
    }

    /// Creates an `MPI_ANY_SOURCE` pattern on `MPI_COMM_WORLD`.
    #[inline]
    pub fn any_source(tag: Tag) -> Self {
        ReceivePattern::new(SourceSel::Any, tag, CommId::WORLD)
    }

    /// Creates an `MPI_ANY_TAG` pattern on `MPI_COMM_WORLD`.
    #[inline]
    pub fn any_tag(src: Rank) -> Self {
        ReceivePattern::new(src, TagSel::Any, CommId::WORLD)
    }

    /// Creates a pattern with both wildcards on `MPI_COMM_WORLD`.
    #[inline]
    pub fn any_any() -> Self {
        ReceivePattern::new(SourceSel::Any, TagSel::Any, CommId::WORLD)
    }

    /// Returns `true` if this receive matches the given message envelope.
    ///
    /// Communicators never match across ids: MPI matching is always scoped to
    /// one communicator.
    #[inline]
    pub fn matches(&self, env: &Envelope) -> bool {
        self.comm == env.comm && self.src.accepts(env.src) && self.tag.accepts(env.tag)
    }

    /// Returns the index class this receive belongs to (§III-B).
    #[inline]
    pub fn wildcard_class(&self) -> WildcardClass {
        match (self.src.is_wild(), self.tag.is_wild()) {
            (false, false) => WildcardClass::None,
            (true, false) => WildcardClass::SrcWild,
            (false, true) => WildcardClass::TagWild,
            (true, true) => WildcardClass::BothWild,
        }
    }

    /// Compatibility relation defining *sequences of compatible receives*
    /// (§III-D3a): "same source rank and tag, posted consecutively".
    ///
    /// Two patterns are compatible iff they are identical, wildcards
    /// included — a message matching one then matches every receive of the
    /// sequence, which is what makes the fast-path shift sound.
    #[inline]
    pub fn compatible(&self, other: &ReceivePattern) -> bool {
        self == other
    }
}

impl From<Envelope> for ReceivePattern {
    /// A fully-specified pattern matching exactly this envelope.
    fn from(env: Envelope) -> Self {
        ReceivePattern::new(env.src, env.tag, env.comm)
    }
}

impl std::fmt::Display for ReceivePattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.src {
            SourceSel::Any => write!(f, "(ANY_SOURCE, ")?,
            SourceSel::Rank(r) => write!(f, "({}, ", r)?,
        }
        match self.tag {
            TagSel::Any => write!(f, "ANY_TAG, ")?,
            TagSel::Tag(t) => write!(f, "{}, ", t)?,
        }
        write!(f, "{})", self.comm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: u32, tag: u32) -> Envelope {
        Envelope::world(Rank(src), Tag(tag))
    }

    #[test]
    fn exact_pattern_matches_only_its_envelope() {
        let p = ReceivePattern::exact(Rank(1), Tag(2));
        assert!(p.matches(&env(1, 2)));
        assert!(!p.matches(&env(1, 3)));
        assert!(!p.matches(&env(2, 2)));
    }

    #[test]
    fn any_source_ignores_rank_but_not_tag() {
        let p = ReceivePattern::any_source(Tag(9));
        assert!(p.matches(&env(0, 9)));
        assert!(p.matches(&env(77, 9)));
        assert!(!p.matches(&env(0, 8)));
    }

    #[test]
    fn any_tag_ignores_tag_but_not_rank() {
        let p = ReceivePattern::any_tag(Rank(4));
        assert!(p.matches(&env(4, 0)));
        assert!(p.matches(&env(4, 12345)));
        assert!(!p.matches(&env(5, 0)));
    }

    #[test]
    fn any_any_matches_everything_on_its_comm() {
        let p = ReceivePattern::any_any();
        assert!(p.matches(&env(0, 0)));
        assert!(p.matches(&env(9, 9)));
        // ...but never across communicators.
        assert!(!p.matches(&Envelope::new(Rank(0), Tag(0), CommId(1))));
    }

    #[test]
    fn communicator_scoping_applies_to_all_classes() {
        let other = CommId(3);
        let p = ReceivePattern::new(Rank(1), Tag(1), other);
        assert!(p.matches(&Envelope::new(Rank(1), Tag(1), other)));
        assert!(!p.matches(&env(1, 1)));
    }

    #[test]
    fn wildcard_class_covers_all_four_combinations() {
        assert_eq!(
            ReceivePattern::exact(Rank(0), Tag(0)).wildcard_class(),
            WildcardClass::None
        );
        assert_eq!(
            ReceivePattern::any_source(Tag(0)).wildcard_class(),
            WildcardClass::SrcWild
        );
        assert_eq!(
            ReceivePattern::any_tag(Rank(0)).wildcard_class(),
            WildcardClass::TagWild
        );
        assert_eq!(
            ReceivePattern::any_any().wildcard_class(),
            WildcardClass::BothWild
        );
    }

    #[test]
    fn class_index_is_a_bijection_onto_0_to_3() {
        let mut seen = [false; 4];
        for c in WildcardClass::ALL {
            let i = c.index();
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn compatibility_is_pattern_equality() {
        let a = ReceivePattern::exact(Rank(1), Tag(2));
        let b = ReceivePattern::exact(Rank(1), Tag(2));
        let c = ReceivePattern::exact(Rank(1), Tag(3));
        let d = ReceivePattern::any_source(Tag(2));
        assert!(a.compatible(&b));
        assert!(!a.compatible(&c));
        assert!(!a.compatible(&d));
    }

    #[test]
    fn envelope_converts_to_exact_pattern() {
        let e = env(6, 7);
        let p: ReceivePattern = e.into();
        assert_eq!(p.wildcard_class(), WildcardClass::None);
        assert!(p.matches(&e));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            ReceivePattern::exact(Rank(1), Tag(2)).to_string(),
            "(rank1, tag2, WORLD)"
        );
        assert_eq!(
            ReceivePattern::any_any().to_string(),
            "(ANY_SOURCE, ANY_TAG, WORLD)"
        );
    }
}
