//! Configuration shared by the matching engines.
//!
//! The prototype in the paper (§VI) is configured with hash tables twice the
//! maximum number of in-flight receives (1024 in-flight, so 2048 bins) and 32
//! DPA threads, "limited by the bookkeeping bitmap size". We bound the block
//! size by 64 because our booking bitmaps are `AtomicU64`s.

use crate::error::MatchError;
use serde::{Deserialize, Serialize};

/// Maximum number of messages matched concurrently in one block.
///
/// Bounded by the width of the booking bitmap (one bit per thread).
pub const MAX_BLOCK_THREADS: usize = 64;

/// How the drain coordinator packs queued arrivals into optimistic blocks.
///
/// MPI only constrains matching order *within* a communicator, so commands on
/// different communicators may be reordered freely without changing any
/// observable match outcome. The packing policy decides whether the drain
/// exploits that freedom (§IV-E execution-group scheduling).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PackingPolicy {
    /// Pack only *consecutive* arrivals from the global submission order.
    /// Any interleaved post — or an arrival on another communicator followed
    /// by a post — cuts the block short, degrading mixed traffic toward
    /// one-message blocks.
    Consecutive,
    /// Reorder across communicators: assemble blocks from the FIFO heads of
    /// per-communicator lanes, hoisting posts ahead of other communicators'
    /// arrivals. Per-communicator order is still strictly preserved.
    #[default]
    CrossComm,
}

/// Tunable parameters of the optimistic matching engine and of the bin-based
/// baseline matcher.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchConfig {
    /// Number of bins in each of the three hash-table indexes.
    pub bins: usize,
    /// Capacity of the receive descriptor table — the maximum number of
    /// receives posted at the same time (§III-B). Exceeding it makes the
    /// engine report [`MatchError::ReceiveTableFull`], upon which an MPI
    /// implementation falls back to software tag matching.
    pub max_receives: usize,
    /// Capacity of the unexpected-message store. Like the receive table this
    /// is a fixed NIC-memory resource.
    pub max_unexpected: usize,
    /// Number of messages processed in parallel per block (the paper's `N`;
    /// 32 in the prototype). Must be in `1..=MAX_BLOCK_THREADS`.
    pub block_threads: usize,
    /// Enable the fast conflict-resolution path (§III-D3a). Disabling forces
    /// every conflicted thread through the slow path — the WC-SP
    /// configuration of Fig. 8.
    pub fast_path: bool,
    /// Enable the early-booking check (§IV-D): skip receives already booked
    /// by lower-id threads during the optimistic phase.
    pub early_booking_check: bool,
    /// Enable lazy removal of consumed receives from bin chains (§IV-D).
    /// When disabled, the consuming thread eagerly unlinks under the bin lock.
    pub lazy_removal: bool,
    /// How the command-queue drain packs arrivals into blocks (defaults to
    /// cross-communicator reordering; see [`PackingPolicy`]).
    #[serde(default)]
    pub packing: PackingPolicy,
}

impl Default for MatchConfig {
    /// The paper's prototype configuration (§VI): 1024 in-flight receives,
    /// hash tables at twice that, 32 threads, all optimizations on except the
    /// early-booking check (presented as optional in §IV-D).
    fn default() -> Self {
        MatchConfig {
            bins: 2048,
            max_receives: 1024,
            max_unexpected: 1024,
            block_threads: 32,
            fast_path: true,
            early_booking_check: false,
            lazy_removal: true,
            packing: PackingPolicy::CrossComm,
        }
    }
}

impl MatchConfig {
    /// A small configuration convenient for unit tests: 16 bins, 64 receives,
    /// 4 threads.
    pub fn small() -> Self {
        MatchConfig {
            bins: 16,
            max_receives: 64,
            max_unexpected: 64,
            block_threads: 4,
            ..MatchConfig::default()
        }
    }

    /// Sets the number of bins per hash table.
    #[must_use]
    pub fn with_bins(mut self, bins: usize) -> Self {
        self.bins = bins;
        self
    }

    /// Sets the receive-descriptor-table capacity.
    #[must_use]
    pub fn with_max_receives(mut self, max: usize) -> Self {
        self.max_receives = max;
        self
    }

    /// Sets the unexpected-message-store capacity.
    #[must_use]
    pub fn with_max_unexpected(mut self, max: usize) -> Self {
        self.max_unexpected = max;
        self
    }

    /// Sets the per-block thread count (the paper's `N`).
    #[must_use]
    pub fn with_block_threads(mut self, n: usize) -> Self {
        self.block_threads = n;
        self
    }

    /// Enables or disables the fast conflict-resolution path.
    #[must_use]
    pub fn with_fast_path(mut self, on: bool) -> Self {
        self.fast_path = on;
        self
    }

    /// Enables or disables the early-booking check.
    #[must_use]
    pub fn with_early_booking_check(mut self, on: bool) -> Self {
        self.early_booking_check = on;
        self
    }

    /// Enables or disables lazy removal.
    #[must_use]
    pub fn with_lazy_removal(mut self, on: bool) -> Self {
        self.lazy_removal = on;
        self
    }

    /// Selects the drain's block-packing policy.
    #[must_use]
    pub fn with_packing(mut self, packing: PackingPolicy) -> Self {
        self.packing = packing;
        self
    }

    /// Validates the configuration, returning a descriptive error for any
    /// parameter outside its legal range.
    pub fn validate(&self) -> Result<(), MatchError> {
        if self.bins == 0 {
            return Err(MatchError::InvalidConfig("bins must be >= 1".into()));
        }
        if self.max_receives == 0 {
            return Err(MatchError::InvalidConfig(
                "max_receives must be >= 1".into(),
            ));
        }
        if self.max_unexpected == 0 {
            return Err(MatchError::InvalidConfig(
                "max_unexpected must be >= 1".into(),
            ));
        }
        if self.block_threads == 0 || self.block_threads > MAX_BLOCK_THREADS {
            return Err(MatchError::InvalidConfig(format!(
                "block_threads must be in 1..={MAX_BLOCK_THREADS}, got {}",
                self.block_threads
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_prototype() {
        let c = MatchConfig::default();
        assert_eq!(c.max_receives, 1024);
        assert_eq!(
            c.bins,
            2 * c.max_receives,
            "hash tables twice the in-flight receives (§VI)"
        );
        assert_eq!(c.block_threads, 32, "32 DPA threads (§VI)");
        assert!(c.fast_path);
        assert!(c.lazy_removal);
        c.validate().unwrap();
    }

    #[test]
    fn builders_compose() {
        let c = MatchConfig::default()
            .with_bins(64)
            .with_max_receives(128)
            .with_max_unexpected(256)
            .with_block_threads(8)
            .with_fast_path(false)
            .with_early_booking_check(true)
            .with_lazy_removal(false)
            .with_packing(PackingPolicy::Consecutive);
        assert_eq!(c.bins, 64);
        assert_eq!(c.max_receives, 128);
        assert_eq!(c.max_unexpected, 256);
        assert_eq!(c.block_threads, 8);
        assert!(!c.fast_path);
        assert!(c.early_booking_check);
        assert!(!c.lazy_removal);
        assert_eq!(c.packing, PackingPolicy::Consecutive);
        c.validate().unwrap();
    }

    #[test]
    fn packing_defaults_to_cross_comm() {
        // `#[serde(default)]` on the field makes configs serialized before
        // the field existed load with this same default, so the enum default
        // and the struct default must agree.
        assert_eq!(PackingPolicy::default(), PackingPolicy::CrossComm);
        assert_eq!(MatchConfig::default().packing, PackingPolicy::CrossComm);
        assert_eq!(MatchConfig::small().packing, PackingPolicy::CrossComm);
    }

    #[test]
    fn zero_parameters_are_rejected() {
        assert!(MatchConfig::default().with_bins(0).validate().is_err());
        assert!(MatchConfig::default()
            .with_max_receives(0)
            .validate()
            .is_err());
        assert!(MatchConfig::default()
            .with_max_unexpected(0)
            .validate()
            .is_err());
        assert!(MatchConfig::default()
            .with_block_threads(0)
            .validate()
            .is_err());
    }

    #[test]
    fn block_threads_bounded_by_bitmap_width() {
        assert!(MatchConfig::default()
            .with_block_threads(MAX_BLOCK_THREADS)
            .validate()
            .is_ok());
        assert!(MatchConfig::default()
            .with_block_threads(MAX_BLOCK_THREADS + 1)
            .validate()
            .is_err());
    }

    #[test]
    fn small_config_is_valid() {
        MatchConfig::small().validate().unwrap();
    }
}
