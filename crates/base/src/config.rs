//! Configuration shared by the matching engines.
//!
//! The prototype in the paper (§VI) is configured with hash tables twice the
//! maximum number of in-flight receives (1024 in-flight, so 2048 bins) and 32
//! DPA threads, "limited by the bookkeeping bitmap size". We bound the block
//! size by 64 because our booking bitmaps are `AtomicU64`s.

use crate::error::MatchError;
use crate::hash::mix64;
use serde::{Deserialize, Serialize};

/// Maximum number of messages matched concurrently in one block.
///
/// Bounded by the width of the booking bitmap (one bit per thread).
pub const MAX_BLOCK_THREADS: usize = 64;

/// How the drain coordinator packs queued arrivals into optimistic blocks.
///
/// MPI only constrains matching order *within* a communicator, so commands on
/// different communicators may be reordered freely without changing any
/// observable match outcome. The packing policy decides whether the drain
/// exploits that freedom (§IV-E execution-group scheduling).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PackingPolicy {
    /// Pack only *consecutive* arrivals from the global submission order.
    /// Any interleaved post — or an arrival on another communicator followed
    /// by a post — cuts the block short, degrading mixed traffic toward
    /// one-message blocks.
    Consecutive,
    /// Reorder across communicators: assemble blocks from the FIFO heads of
    /// per-communicator lanes, hoisting posts ahead of other communicators'
    /// arrivals. Per-communicator order is still strictly preserved.
    #[default]
    CrossComm,
}

/// How host threads hand commands to the drain coordinator (§IV-E's QP
/// command queues).
///
/// The submission path decides what a concurrent post/arrival submitter
/// contends on: the legacy mutex FIFO serializes every submitter *and* the
/// drain on one lock, while the per-communicator rings make submission
/// wait-free — a submitter only CASes its own communicator's ring tail, and
/// the drain consumes from the other end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubmissionPath {
    /// One mutex-guarded global FIFO (the pre-ring behaviour, kept for A/B
    /// comparison). Submission blocks on the queue lock; ring capacity is
    /// ignored and submissions never report
    /// [`MatchError::SubmissionRingFull`].
    Mutex,
    /// One bounded MPSC ring per communicator shard. Submission is
    /// wait-free; a full ring reports the retryable
    /// [`MatchError::SubmissionRingFull`] backpressure signal instead of
    /// blocking.
    #[default]
    Ring,
}

/// How the sender-side reliability protocol repairs a lossy wire.
///
/// Both modes share the same receive-side contract — sequenced packets are
/// delivered to the matching engine strictly in order, so the chaos
/// oracle's matched-pairs-identical invariant holds under either — but they
/// pay very different retransmit bills for it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReliabilityMode {
    /// Blanket go-back-N (the pre-selective-repeat behaviour, kept for A/B
    /// comparison): on timeout the whole unacked window is resent and the
    /// receiver discards every out-of-order packet. Simple, but a single
    /// drop can cost a full window of retransmissions.
    GoBackN,
    /// Selective repeat: the receiver stages out-of-order packets in a
    /// bounded buffer and advertises them as SACK blocks on its cumulative
    /// acks; the sender retransmits only the holes, times out on a smoothed
    /// virtual-time RTT estimate, and sizes its unacked window adaptively.
    #[default]
    SelectiveRepeat,
}

impl ReliabilityMode {
    /// The mode label used across artifacts and bench reports.
    pub fn label(self) -> &'static str {
        match self {
            ReliabilityMode::GoBackN => "go-back-n",
            ReliabilityMode::SelectiveRepeat => "selective-repeat",
        }
    }
}

/// Tunable parameters of the optimistic matching engine and of the bin-based
/// baseline matcher.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchConfig {
    /// Number of bins in each of the three hash-table indexes.
    pub bins: usize,
    /// Capacity of the receive descriptor table — the maximum number of
    /// receives posted at the same time (§III-B). Exceeding it makes the
    /// engine report [`MatchError::ReceiveTableFull`], upon which an MPI
    /// implementation falls back to software tag matching.
    pub max_receives: usize,
    /// Capacity of the unexpected-message store. Like the receive table this
    /// is a fixed NIC-memory resource.
    pub max_unexpected: usize,
    /// Number of messages processed in parallel per block (the paper's `N`;
    /// 32 in the prototype). Must be in `1..=MAX_BLOCK_THREADS`.
    pub block_threads: usize,
    /// Enable the fast conflict-resolution path (§III-D3a). Disabling forces
    /// every conflicted thread through the slow path — the WC-SP
    /// configuration of Fig. 8.
    pub fast_path: bool,
    /// Enable the early-booking check (§IV-D): skip receives already booked
    /// by lower-id threads during the optimistic phase.
    pub early_booking_check: bool,
    /// Enable lazy removal of consumed receives from bin chains (§IV-D).
    /// When disabled, the consuming thread eagerly unlinks under the bin lock.
    pub lazy_removal: bool,
    /// How the command-queue drain packs arrivals into blocks (defaults to
    /// cross-communicator reordering; see [`PackingPolicy`]).
    #[serde(default)]
    pub packing: PackingPolicy,
    /// Cap on the number of arrivals one communicator lane may contribute to
    /// a single block under [`PackingPolicy::CrossComm`]. `None` (the
    /// default) keeps the greedy fill — one deep lane may own the whole
    /// block. A fair scheduler layered above (the `matchd` deficit
    /// round-robin) sets this so a flooding tenant's lane cannot crowd the
    /// other lanes out of every block. Ignored under
    /// [`PackingPolicy::Consecutive`].
    #[serde(default)]
    pub lane_quota: Option<usize>,
    /// How submitters hand commands to the drain coordinator (defaults to
    /// per-communicator wait-free rings; see [`SubmissionPath`]).
    #[serde(default)]
    pub submission: SubmissionPath,
    /// Capacity of each communicator's submission ring under
    /// [`SubmissionPath::Ring`] (rounded up to a power of two by the ring).
    /// A full ring reports the retryable
    /// [`MatchError::SubmissionRingFull`] backpressure signal. Ignored under
    /// [`SubmissionPath::Mutex`]. Must be >= 1.
    #[serde(default = "default_ring_capacity")]
    pub ring_capacity: usize,
}

/// Serde default for [`MatchConfig::ring_capacity`]: configs serialized
/// before the field existed load with the same 1024-slot rings as
/// [`MatchConfig::default`].
fn default_ring_capacity() -> usize {
    1024
}

impl Default for MatchConfig {
    /// The paper's prototype configuration (§VI): 1024 in-flight receives,
    /// hash tables at twice that, 32 threads, all optimizations on except the
    /// early-booking check (presented as optional in §IV-D).
    fn default() -> Self {
        MatchConfig {
            bins: 2048,
            max_receives: 1024,
            max_unexpected: 1024,
            block_threads: 32,
            fast_path: true,
            early_booking_check: false,
            lazy_removal: true,
            packing: PackingPolicy::CrossComm,
            lane_quota: None,
            submission: SubmissionPath::Ring,
            ring_capacity: default_ring_capacity(),
        }
    }
}

impl MatchConfig {
    /// A small configuration convenient for unit tests: 16 bins, 64 receives,
    /// 4 threads.
    pub fn small() -> Self {
        MatchConfig {
            bins: 16,
            max_receives: 64,
            max_unexpected: 64,
            block_threads: 4,
            ..MatchConfig::default()
        }
    }

    /// Sets the number of bins per hash table.
    #[must_use]
    pub fn with_bins(mut self, bins: usize) -> Self {
        self.bins = bins;
        self
    }

    /// Sets the receive-descriptor-table capacity.
    #[must_use]
    pub fn with_max_receives(mut self, max: usize) -> Self {
        self.max_receives = max;
        self
    }

    /// Sets the unexpected-message-store capacity.
    #[must_use]
    pub fn with_max_unexpected(mut self, max: usize) -> Self {
        self.max_unexpected = max;
        self
    }

    /// Sets the per-block thread count (the paper's `N`).
    #[must_use]
    pub fn with_block_threads(mut self, n: usize) -> Self {
        self.block_threads = n;
        self
    }

    /// Enables or disables the fast conflict-resolution path.
    #[must_use]
    pub fn with_fast_path(mut self, on: bool) -> Self {
        self.fast_path = on;
        self
    }

    /// Enables or disables the early-booking check.
    #[must_use]
    pub fn with_early_booking_check(mut self, on: bool) -> Self {
        self.early_booking_check = on;
        self
    }

    /// Enables or disables lazy removal.
    #[must_use]
    pub fn with_lazy_removal(mut self, on: bool) -> Self {
        self.lazy_removal = on;
        self
    }

    /// Selects the drain's block-packing policy.
    #[must_use]
    pub fn with_packing(mut self, packing: PackingPolicy) -> Self {
        self.packing = packing;
        self
    }

    /// Caps the arrivals one lane contributes per cross-comm block
    /// (`None` = unlimited greedy fill).
    #[must_use]
    pub fn with_lane_quota(mut self, quota: Option<usize>) -> Self {
        self.lane_quota = quota;
        self
    }

    /// Selects the command submission path (mutex FIFO vs per-comm rings).
    #[must_use]
    pub fn with_submission(mut self, path: SubmissionPath) -> Self {
        self.submission = path;
        self
    }

    /// Sets the per-communicator submission-ring capacity (rounded up to a
    /// power of two by the ring; ignored under [`SubmissionPath::Mutex`]).
    #[must_use]
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Validates the configuration, returning a descriptive error for any
    /// parameter outside its legal range.
    pub fn validate(&self) -> Result<(), MatchError> {
        if self.bins == 0 {
            return Err(MatchError::InvalidConfig("bins must be >= 1".into()));
        }
        if self.max_receives == 0 {
            return Err(MatchError::InvalidConfig(
                "max_receives must be >= 1".into(),
            ));
        }
        if self.max_unexpected == 0 {
            return Err(MatchError::InvalidConfig(
                "max_unexpected must be >= 1".into(),
            ));
        }
        if self.block_threads == 0 || self.block_threads > MAX_BLOCK_THREADS {
            return Err(MatchError::InvalidConfig(format!(
                "block_threads must be in 1..={MAX_BLOCK_THREADS}, got {}",
                self.block_threads
            )));
        }
        if self.lane_quota == Some(0) {
            return Err(MatchError::InvalidConfig(
                "lane_quota must be >= 1 when set".into(),
            ));
        }
        if self.ring_capacity == 0 {
            return Err(MatchError::InvalidConfig(
                "ring_capacity must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// A deterministic pseudo-random stream for fault injection.
///
/// This is a `splitmix64` generator built on the same [`mix64`] finalizer the
/// inline-hash optimization uses (§IV-D), so fault injection adds no new
/// dependency and two runs from the same seed make *exactly* the same
/// decisions — the property the chaos oracle relies on to compare a faulty
/// run against its fault-free twin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// A stream seeded with `seed`. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// The next 64-bit value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64: advance by the golden-ratio increment, finalize.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }

    /// A uniformly distributed value in `0..bound` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Draws one Bernoulli trial: true with probability `permille`/1000.
    pub fn chance(&mut self, permille: u32) -> bool {
        self.below(1000) < u64::from(permille.min(1000))
    }
}

/// A seeded, declarative plan for injecting faults into the simulated wire
/// and backend (the `dpa-sim` crate's `WireFaults` / `FaultInjectingBackend`
/// interpret it).
///
/// All rates are expressed in **permille** (0..=1000, i.e. tenths of a
/// percent) so the plan stays `Eq` + serde-serializable without dragging
/// floating point into config equality. The default plan is inert: every
/// rate zero, so wrapping a path with `FaultPlan::default()` changes
/// nothing.
///
/// The plan is deterministic: a given `(seed, rates)` pair injects exactly
/// the same faults in every run, which is what lets the chaos tests assert
/// that the matched (receive, message) pairs under faults equal the
/// fault-free run's.
///
/// ```
/// use otm_base::FaultPlan;
///
/// // 10% drops, 10% duplicates, 10% reorders within a 4-packet window.
/// let plan = FaultPlan::new(42)
///     .with_drop_permille(100)
///     .with_duplicate_permille(100)
///     .with_reorder_permille(100)
///     .with_reorder_window(4);
/// plan.validate().expect("rates are in range");
/// assert!(plan.is_active());
///
/// // Equal seeds make equal decision streams.
/// let (mut a, mut b) = (plan.rng(), plan.rng());
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the decision stream ([`FaultPlan::rng`]).
    pub seed: u64,
    /// Probability (permille) that a wire packet is silently dropped.
    pub drop_permille: u32,
    /// Probability (permille) that a wire packet is delivered twice.
    pub duplicate_permille: u32,
    /// Probability (permille) that a wire packet is held back and released
    /// out of order within [`FaultPlan::reorder_window`] delivery polls.
    pub reorder_permille: u32,
    /// Probability (permille) that a wire packet is delayed by
    /// [`FaultPlan::delay_polls`] delivery polls (delivered late, in order
    /// relative to other held packets).
    pub delay_permille: u32,
    /// Probability (permille) that a backend drain reports a transient,
    /// retryable [`MatchError`] without consuming any command.
    pub transient_fail_permille: u32,
    /// Probability (permille) that a backend drain stalls: it makes no
    /// progress and reports no error, as a wedged worker would.
    pub stall_permille: u32,
    /// Window (in delivery polls) within which a reordered packet is
    /// released. Must be >= 1 when `reorder_permille > 0`.
    pub reorder_window: usize,
    /// How many delivery polls a delayed packet is held. Must be >= 1 when
    /// `delay_permille > 0`.
    pub delay_polls: usize,
    /// Hard bound on the total number of injected faults (`None` =
    /// unbounded). Property tests set this to guarantee liveness: after the
    /// budget is spent the wire becomes perfect, so any retransmit
    /// eventually lands.
    pub max_faults: Option<u64>,
}

impl Default for FaultPlan {
    /// An inert plan: all rates zero, unbounded budget, seed 0.
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_permille: 0,
            duplicate_permille: 0,
            reorder_permille: 0,
            delay_permille: 0,
            transient_fail_permille: 0,
            stall_permille: 0,
            reorder_window: 4,
            delay_polls: 2,
            max_faults: None,
        }
    }
}

impl FaultPlan {
    /// An inert plan with the given seed; compose rates with the `with_*`
    /// builders.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the packet-drop rate (permille).
    #[must_use]
    pub fn with_drop_permille(mut self, p: u32) -> Self {
        self.drop_permille = p;
        self
    }

    /// Sets the packet-duplication rate (permille).
    #[must_use]
    pub fn with_duplicate_permille(mut self, p: u32) -> Self {
        self.duplicate_permille = p;
        self
    }

    /// Sets the packet-reorder rate (permille).
    #[must_use]
    pub fn with_reorder_permille(mut self, p: u32) -> Self {
        self.reorder_permille = p;
        self
    }

    /// Sets the packet-delay rate (permille).
    #[must_use]
    pub fn with_delay_permille(mut self, p: u32) -> Self {
        self.delay_permille = p;
        self
    }

    /// Sets the transient backend-failure rate (permille).
    #[must_use]
    pub fn with_transient_fail_permille(mut self, p: u32) -> Self {
        self.transient_fail_permille = p;
        self
    }

    /// Sets the backend worker-stall rate (permille).
    #[must_use]
    pub fn with_stall_permille(mut self, p: u32) -> Self {
        self.stall_permille = p;
        self
    }

    /// Sets the reorder window (delivery polls).
    #[must_use]
    pub fn with_reorder_window(mut self, polls: usize) -> Self {
        self.reorder_window = polls;
        self
    }

    /// Sets the delay length (delivery polls).
    #[must_use]
    pub fn with_delay_polls(mut self, polls: usize) -> Self {
        self.delay_polls = polls;
        self
    }

    /// Bounds the total number of injected faults.
    #[must_use]
    pub fn with_max_faults(mut self, budget: u64) -> Self {
        self.max_faults = Some(budget);
        self
    }

    /// Re-seeds the plan, e.g. to derive per-node plans from one base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether the plan can inject anything at all. Inert plans let the
    /// wrapped paths skip fault bookkeeping entirely.
    pub fn is_active(&self) -> bool {
        (self.drop_permille
            | self.duplicate_permille
            | self.reorder_permille
            | self.delay_permille
            | self.transient_fail_permille
            | self.stall_permille)
            > 0
            && self.max_faults != Some(0)
    }

    /// The plan's decision stream. Every call returns a fresh stream from
    /// the same seed.
    pub fn rng(&self) -> FaultRng {
        FaultRng::new(self.seed)
    }

    /// Validates the plan: rates must be permille (<= 1000) and the hold
    /// windows positive whenever their rate is non-zero.
    pub fn validate(&self) -> Result<(), MatchError> {
        for (name, rate) in [
            ("drop_permille", self.drop_permille),
            ("duplicate_permille", self.duplicate_permille),
            ("reorder_permille", self.reorder_permille),
            ("delay_permille", self.delay_permille),
            ("transient_fail_permille", self.transient_fail_permille),
            ("stall_permille", self.stall_permille),
        ] {
            if rate > 1000 {
                return Err(MatchError::InvalidConfig(format!(
                    "{name} must be <= 1000 (permille), got {rate}"
                )));
            }
        }
        if self.reorder_permille > 0 && self.reorder_window == 0 {
            return Err(MatchError::InvalidConfig(
                "reorder_window must be >= 1 when reorder_permille > 0".into(),
            ));
        }
        if self.delay_permille > 0 && self.delay_polls == 0 {
            return Err(MatchError::InvalidConfig(
                "delay_polls must be >= 1 when delay_permille > 0".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_prototype() {
        let c = MatchConfig::default();
        assert_eq!(c.max_receives, 1024);
        assert_eq!(
            c.bins,
            2 * c.max_receives,
            "hash tables twice the in-flight receives (§VI)"
        );
        assert_eq!(c.block_threads, 32, "32 DPA threads (§VI)");
        assert!(c.fast_path);
        assert!(c.lazy_removal);
        c.validate().unwrap();
    }

    #[test]
    fn builders_compose() {
        let c = MatchConfig::default()
            .with_bins(64)
            .with_max_receives(128)
            .with_max_unexpected(256)
            .with_block_threads(8)
            .with_fast_path(false)
            .with_early_booking_check(true)
            .with_lazy_removal(false)
            .with_packing(PackingPolicy::Consecutive)
            .with_submission(SubmissionPath::Mutex)
            .with_ring_capacity(256);
        assert_eq!(c.bins, 64);
        assert_eq!(c.max_receives, 128);
        assert_eq!(c.max_unexpected, 256);
        assert_eq!(c.block_threads, 8);
        assert!(!c.fast_path);
        assert!(c.early_booking_check);
        assert!(!c.lazy_removal);
        assert_eq!(c.packing, PackingPolicy::Consecutive);
        assert_eq!(c.submission, SubmissionPath::Mutex);
        assert_eq!(c.ring_capacity, 256);
        c.validate().unwrap();
    }

    #[test]
    fn packing_defaults_to_cross_comm() {
        // `#[serde(default)]` on the field makes configs serialized before
        // the field existed load with this same default, so the enum default
        // and the struct default must agree.
        assert_eq!(PackingPolicy::default(), PackingPolicy::CrossComm);
        assert_eq!(MatchConfig::default().packing, PackingPolicy::CrossComm);
        assert_eq!(MatchConfig::small().packing, PackingPolicy::CrossComm);
    }

    #[test]
    fn submission_defaults_to_rings() {
        // Same serde-compat contract as `packing`: the enum default, the
        // struct default, and the serde field default must all agree so that
        // configs serialized before the field existed load identically.
        assert_eq!(SubmissionPath::default(), SubmissionPath::Ring);
        assert_eq!(MatchConfig::default().submission, SubmissionPath::Ring);
        assert_eq!(MatchConfig::small().submission, SubmissionPath::Ring);
        assert_eq!(MatchConfig::default().ring_capacity, 1024);
        assert_eq!(MatchConfig::small().ring_capacity, 1024);
    }

    #[test]
    fn reliability_defaults_to_selective_repeat() {
        // The sender constructs with `ReliabilityMode::default()`, so the
        // enum default is the protocol every existing harness gets unless it
        // explicitly opts back into the go-back-N baseline.
        assert_eq!(ReliabilityMode::default(), ReliabilityMode::SelectiveRepeat);
        assert_eq!(ReliabilityMode::SelectiveRepeat.label(), "selective-repeat");
        assert_eq!(ReliabilityMode::GoBackN.label(), "go-back-n");
    }

    #[test]
    fn zero_ring_capacity_is_rejected() {
        assert!(MatchConfig::default()
            .with_ring_capacity(0)
            .validate()
            .is_err());
        assert!(MatchConfig::default()
            .with_ring_capacity(1)
            .validate()
            .is_ok());
    }

    #[test]
    fn zero_parameters_are_rejected() {
        assert!(MatchConfig::default().with_bins(0).validate().is_err());
        assert!(MatchConfig::default()
            .with_max_receives(0)
            .validate()
            .is_err());
        assert!(MatchConfig::default()
            .with_max_unexpected(0)
            .validate()
            .is_err());
        assert!(MatchConfig::default()
            .with_block_threads(0)
            .validate()
            .is_err());
    }

    #[test]
    fn block_threads_bounded_by_bitmap_width() {
        assert!(MatchConfig::default()
            .with_block_threads(MAX_BLOCK_THREADS)
            .validate()
            .is_ok());
        assert!(MatchConfig::default()
            .with_block_threads(MAX_BLOCK_THREADS + 1)
            .validate()
            .is_err());
    }

    #[test]
    fn small_config_is_valid() {
        MatchConfig::small().validate().unwrap();
    }

    #[test]
    fn fault_rng_is_deterministic_and_seed_sensitive() {
        let mut a = FaultRng::new(7);
        let mut b = FaultRng::new(7);
        let mut c = FaultRng::new(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys, "same seed, same stream");
        assert_ne!(xs, zs, "different seed, different stream");
    }

    #[test]
    fn fault_rng_chance_tracks_permille_rate() {
        let mut rng = FaultRng::new(99);
        let hits = (0..10_000).filter(|_| rng.chance(100)).count();
        // 10% nominal over 10k trials; a fair stream stays well inside 8–12%.
        assert!((800..=1200).contains(&hits), "10% rate drew {hits}/10000");
        let mut rng = FaultRng::new(99);
        assert!((0..1000).all(|_| !rng.chance(0)), "0 permille never fires");
        let mut rng = FaultRng::new(99);
        assert!(
            (0..1000).all(|_| rng.chance(1000)),
            "1000 permille always fires"
        );
    }

    #[test]
    fn fault_plan_default_is_inert_and_valid() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        plan.validate().unwrap();
    }

    #[test]
    fn fault_plan_builders_compose_and_validate() {
        let plan = FaultPlan::new(42)
            .with_drop_permille(100)
            .with_duplicate_permille(100)
            .with_reorder_permille(100)
            .with_delay_permille(50)
            .with_transient_fail_permille(200)
            .with_stall_permille(10)
            .with_reorder_window(8)
            .with_delay_polls(3)
            .with_max_faults(1000);
        assert!(plan.is_active());
        plan.validate().unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.max_faults, Some(1000));
    }

    #[test]
    fn fault_plan_rejects_out_of_range_rates_and_zero_windows() {
        assert!(FaultPlan::new(1)
            .with_drop_permille(1001)
            .validate()
            .is_err());
        assert!(FaultPlan::new(1)
            .with_reorder_permille(10)
            .with_reorder_window(0)
            .validate()
            .is_err());
        assert!(FaultPlan::new(1)
            .with_delay_permille(10)
            .with_delay_polls(0)
            .validate()
            .is_err());
        // A zero rate makes the window irrelevant.
        assert!(FaultPlan::new(1).with_reorder_window(0).validate().is_ok());
    }

    #[test]
    fn fault_plan_with_zero_budget_is_inert() {
        let plan = FaultPlan::new(3).with_drop_permille(500).with_max_faults(0);
        assert!(!plan.is_active());
    }

    #[test]
    fn fault_plan_rng_streams_are_reproducible() {
        let plan = FaultPlan::new(0xfeed);
        let (mut a, mut b) = (plan.rng(), plan.rng());
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
