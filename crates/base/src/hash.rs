//! Bin hash functions and the sender-side inline-hash optimization (§IV-D).
//!
//! The three binned hash tables of §III-B are keyed by `(src, tag)`, by `tag`
//! alone, and by `src` alone. Because these keys do not depend on receiver
//! state, the sender can compute all three hashes and ship them in the
//! message header ("Inline hash values", §IV-D), saving compute on the
//! SmartNIC. [`InlineHashes`] is that header field; [`InlineHashes::of`] is
//! the computation either side performs.
//!
//! The mixer is `splitmix64` — a cheap, statistically strong 64-bit finalizer
//! well suited to the small integer keys MPI matching produces (ranks and
//! tags are typically dense small integers, which would collide catastrophically
//! under an identity hash with power-of-two bin counts).

use crate::envelope::Envelope;
use crate::types::{CommId, Rank, Tag};
use serde::{Deserialize, Serialize};

/// `splitmix64` finalizer: a full-avalanche 64-bit mixer.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash of the fully-specified key `(src, tag, comm)` — used by the
/// no-wildcard index.
#[inline]
pub fn hash_src_tag(src: Rank, tag: Tag, comm: CommId) -> u64 {
    mix64(u64::from(src.0) | (u64::from(tag.0) << 32)) ^ mix64(0x5159_0000 | u64::from(comm.0))
}

/// Hash of the key `(tag, comm)` — used by the source-wildcard index.
#[inline]
pub fn hash_tag(tag: Tag, comm: CommId) -> u64 {
    mix64(0x7461_6700_0000_0000 | u64::from(tag.0)) ^ mix64(0x5159_0000 | u64::from(comm.0))
}

/// Hash of the key `(src, comm)` — used by the tag-wildcard index.
#[inline]
pub fn hash_src(src: Rank, comm: CommId) -> u64 {
    mix64(0x7372_6300_0000_0000 | u64::from(src.0)) ^ mix64(0x5159_0000 | u64::from(comm.0))
}

/// Reduces a 64-bit hash to a bin index for a table of `bins` bins.
///
/// Bin counts in the paper's sweeps are powers of two (1, 32, 128, 256), for
/// which this compiles to a mask; arbitrary counts fall back to modulo.
#[inline]
pub fn bin_of(hash: u64, bins: usize) -> usize {
    debug_assert!(bins > 0, "a hash table needs at least one bin");
    if bins.is_power_of_two() {
        (hash as usize) & (bins - 1)
    } else {
        (hash % bins as u64) as usize
    }
}

/// The three precomputed hash values a sender inlines into the message
/// header (§IV-D) so the receiving accelerator can index its tables without
/// hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InlineHashes {
    /// `hash(src, tag)` — key of the no-wildcard index.
    pub src_tag: u64,
    /// `hash(tag)` — key of the source-wildcard index.
    pub tag: u64,
    /// `hash(src)` — key of the tag-wildcard index.
    pub src: u64,
}

impl InlineHashes {
    /// Computes the three hashes for a message envelope.
    #[inline]
    pub fn of(env: &Envelope) -> Self {
        InlineHashes {
            src_tag: hash_src_tag(env.src, env.tag, env.comm),
            tag: hash_tag(env.tag, env.comm),
            src: hash_src(env.src, env.comm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_avalanches_single_bit_flips() {
        // Flipping one input bit should flip roughly half the output bits.
        for bit in 0..64 {
            let a = mix64(0x1234_5678_9abc_def0);
            let b = mix64(0x1234_5678_9abc_def0 ^ (1 << bit));
            let flipped = (a ^ b).count_ones();
            assert!(
                (16..=48).contains(&flipped),
                "bit {bit}: only {flipped} output bits flipped"
            );
        }
    }

    #[test]
    fn hashes_are_deterministic() {
        let e = Envelope::world(Rank(3), Tag(5));
        assert_eq!(InlineHashes::of(&e), InlineHashes::of(&e));
    }

    #[test]
    fn different_keys_hash_differently() {
        let a = hash_src_tag(Rank(0), Tag(0), CommId::WORLD);
        let b = hash_src_tag(Rank(0), Tag(1), CommId::WORLD);
        let c = hash_src_tag(Rank(1), Tag(0), CommId::WORLD);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn communicator_perturbs_every_hash() {
        let w = CommId::WORLD;
        let o = CommId(1);
        assert_ne!(
            hash_src_tag(Rank(2), Tag(2), w),
            hash_src_tag(Rank(2), Tag(2), o)
        );
        assert_ne!(hash_tag(Tag(2), w), hash_tag(Tag(2), o));
        assert_ne!(hash_src(Rank(2), w), hash_src(Rank(2), o));
    }

    #[test]
    fn single_key_hashes_do_not_collide_with_pair_hash_domains() {
        // hash(tag) and hash(src) for the same numeric value must differ:
        // the two wildcard indexes use distinct key domains.
        assert_ne!(
            hash_tag(Tag(7), CommId::WORLD),
            hash_src(Rank(7), CommId::WORLD)
        );
    }

    #[test]
    fn bin_of_respects_table_size() {
        for bins in [1usize, 2, 32, 100, 128, 256] {
            for h in [0u64, 1, u64::MAX, 0xdead_beef] {
                assert!(bin_of(h, bins) < bins);
            }
        }
    }

    #[test]
    fn one_bin_degenerates_to_traditional_matching() {
        // bins=1 is the paper's "traditional tag matching" configuration of
        // Fig. 7: everything lands in bin 0.
        for h in 0..1000u64 {
            assert_eq!(bin_of(mix64(h), 1), 0);
        }
    }

    #[test]
    fn dense_small_keys_spread_over_bins() {
        // Ranks/tags are small dense integers; the mixer must spread them.
        let bins = 128;
        let mut counts = vec![0usize; bins];
        for r in 0..64u32 {
            for t in 0..16u32 {
                counts[bin_of(hash_src_tag(Rank(r), Tag(t), CommId::WORLD), bins)] += 1;
            }
        }
        let max = *counts.iter().max().unwrap();
        // 1024 keys over 128 bins: mean 8, a decent hash stays under 4x mean.
        assert!(max <= 32, "hot bin holds {max} of 1024 keys");
    }

    #[test]
    fn inline_hashes_match_receiver_side_recomputation() {
        // The whole point of the optimization: sender-computed values must be
        // exactly what the receiver would compute.
        let e = Envelope::new(Rank(11), Tag(13), CommId(2));
        let inl = InlineHashes::of(&e);
        assert_eq!(inl.src_tag, hash_src_tag(e.src, e.tag, e.comm));
        assert_eq!(inl.tag, hash_tag(e.tag, e.comm));
        assert_eq!(inl.src, hash_src(e.src, e.comm));
    }
}
