//! Per-communicator matching hints (§VII).
//!
//! "MPI already allows applications to relax these constraints by
//! specifying communicator hints. In principle, these hints can be
//! propagated to the offloaded matching solution, reducing matching costs.
//! For example, `mpi_assert_no_any_tag` and `mpi_assert_no_any_source`
//! indicate that no receive with tag and source wildcards will be posted
//! ... Another example is `mpi_assert_allow_overtaking` that relaxes
//! matching order."
//!
//! The engine uses these to skip index structures that can never hold a
//! receive and, for `allow_overtaking`, to bypass the ordering machinery
//! (booking, partial barrier, conflict resolution) entirely.

use crate::envelope::WildcardClass;
use serde::{Deserialize, Serialize};

/// MPI communicator info assertions relevant to matching.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommHints {
    /// `mpi_assert_no_any_source`: the application will never post a
    /// receive with `MPI_ANY_SOURCE` on this communicator.
    pub no_any_source: bool,
    /// `mpi_assert_no_any_tag`: the application will never post a receive
    /// with `MPI_ANY_TAG` on this communicator.
    pub no_any_tag: bool,
    /// `mpi_assert_allow_overtaking`: the application does not rely on the
    /// matching order constraints C1/C2; any pattern-correct pairing is
    /// acceptable (e.g. NCCL-style semantics, §VII).
    pub allow_overtaking: bool,
}

impl CommHints {
    /// No assertions: full MPI semantics (the default).
    pub const NONE: CommHints = CommHints {
        no_any_source: false,
        no_any_tag: false,
        allow_overtaking: false,
    };

    /// Both wildcard assertions: fully-specified receives only.
    pub fn no_wildcards() -> Self {
        CommHints {
            no_any_source: true,
            no_any_tag: true,
            allow_overtaking: false,
        }
    }

    /// Relaxed ordering on top of no wildcards — the cheapest configuration.
    pub fn relaxed() -> Self {
        CommHints {
            no_any_source: true,
            no_any_tag: true,
            allow_overtaking: true,
        }
    }

    /// Whether a receive of the given wildcard class is permitted under
    /// these hints.
    #[inline]
    pub fn permits(&self, class: WildcardClass) -> bool {
        match class {
            WildcardClass::None => true,
            WildcardClass::SrcWild => !self.no_any_source,
            WildcardClass::TagWild => !self.no_any_tag,
            WildcardClass::BothWild => !self.no_any_source && !self.no_any_tag,
        }
    }

    /// The index classes an incoming message must search under these hints
    /// (classes that can never hold a receive are skipped — one of the
    /// §VII cost reductions).
    pub fn searchable_classes(&self) -> impl Iterator<Item = WildcardClass> + '_ {
        WildcardClass::ALL.into_iter().filter(|&c| self.permits(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_permits_everything() {
        let h = CommHints::default();
        for c in WildcardClass::ALL {
            assert!(h.permits(c));
        }
        assert_eq!(h.searchable_classes().count(), 4);
    }

    #[test]
    fn no_any_source_bans_source_wildcards() {
        let h = CommHints {
            no_any_source: true,
            ..Default::default()
        };
        assert!(h.permits(WildcardClass::None));
        assert!(!h.permits(WildcardClass::SrcWild));
        assert!(h.permits(WildcardClass::TagWild));
        assert!(
            !h.permits(WildcardClass::BothWild),
            "both-wild uses ANY_SOURCE too"
        );
        assert_eq!(h.searchable_classes().count(), 2);
    }

    #[test]
    fn no_any_tag_bans_tag_wildcards() {
        let h = CommHints {
            no_any_tag: true,
            ..Default::default()
        };
        assert!(!h.permits(WildcardClass::TagWild));
        assert!(!h.permits(WildcardClass::BothWild));
        assert!(h.permits(WildcardClass::SrcWild));
    }

    #[test]
    fn no_wildcards_leaves_only_the_exact_index() {
        let h = CommHints::no_wildcards();
        let classes: Vec<_> = h.searchable_classes().collect();
        assert_eq!(classes, vec![WildcardClass::None]);
        assert!(!h.allow_overtaking);
    }

    #[test]
    fn relaxed_adds_overtaking() {
        let h = CommHints::relaxed();
        assert!(h.allow_overtaking);
        assert_eq!(h.searchable_classes().count(), 1);
    }
}
