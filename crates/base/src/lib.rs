//! Shared model types for the Optimistic Tag Matching (OTM) reproduction.
//!
//! This crate contains everything that is common to the matching engines, the
//! SmartNIC simulator, the trace analyzer and the workload generators:
//!
//! * [`types`] — strongly-typed identifiers (ranks, tags, communicators) and
//!   the monotone labels that order posted receives and incoming messages;
//! * [`envelope`] — message envelopes and receive patterns with MPI wildcard
//!   semantics (`MPI_ANY_SOURCE` / `MPI_ANY_TAG`), including the *wildcard
//!   class* used to select one of the four index structures of the paper
//!   (§III-B) and the *compatibility* relation that defines sequences of
//!   compatible receives (§III-D3a);
//! * [`hash`] — the bin hash functions and the sender-side *inline hash*
//!   optimization (§IV-D);
//! * [`config`] — the engine configuration knobs (bins, block size, feature
//!   flags) shared by all matchers;
//! * [`memory`] — the analytic DPA memory-footprint model of §IV-E;
//! * [`error`] — common error types, including the resource-exhaustion
//!   condition that triggers fallback to software tag matching.
//!
//! The paper being reproduced is *"Offloaded MPI message matching: an
//! optimistic approach"* (García et al., SC 2024). Section references in the
//! documentation of this workspace refer to that paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod envelope;
pub mod error;
pub mod hash;
pub mod hints;
pub mod memory;
pub mod types;

pub use config::{
    FaultPlan, FaultRng, MatchConfig, PackingPolicy, ReliabilityMode, SubmissionPath,
};
pub use envelope::{Envelope, ReceivePattern, SourceSel, TagSel, WildcardClass};
pub use error::MatchError;
pub use hash::InlineHashes;
pub use hints::CommHints;
pub use types::{ArrivalSeq, CommId, PostLabel, Rank, SeqId, Tag};
