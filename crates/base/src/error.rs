//! Error types shared across the workspace.

use serde::{Deserialize, Serialize};

/// Errors reported by the matching engines and their substrates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchError {
    /// The fixed-size receive descriptor table is full (§III-B): "if the
    /// number of posted receives exceeds this capacity, the application must
    /// fall back to software tag matching".
    ReceiveTableFull,
    /// The unexpected-message store is full; the implementation must fall
    /// back to software tag matching (§IV-E).
    UnexpectedStoreFull,
    /// DPA memory could not be allocated for a communicator's index tables
    /// (§IV-E): the MPI implementation is expected to fall back to software
    /// tag matching for that communicator.
    OutOfDeviceMemory {
        /// Bytes that were requested.
        requested: u64,
        /// Bytes that were available.
        available: u64,
    },
    /// A configuration parameter was outside its legal range.
    InvalidConfig(String),
    /// An operation referenced a communicator with no allocated matching
    /// resources.
    UnknownCommunicator(u16),
    /// A receive violated a communicator hint (§VII): e.g. an
    /// `MPI_ANY_SOURCE` receive posted on a communicator asserted with
    /// `mpi_assert_no_any_source`. Per MPI, violating an assertion is an
    /// application error.
    HintViolation(String),
    /// A communicator's bounded submission ring is full: the submitter is
    /// producing faster than the drain coordinator consumes. Retryable
    /// backpressure — draining the command queue frees slots, so the
    /// submission can succeed later without any state change.
    SubmissionRingFull {
        /// The communicator whose ring rejected the submission.
        comm: u16,
    },
    /// An engine operation was attempted after the engine was shut down.
    EngineStopped,
}

impl MatchError {
    /// Whether the error is retryable resource exhaustion: the operation
    /// can succeed later once the caller frees capacity (consumes queued
    /// receives or unexpected messages, or releases device memory). The
    /// engine's command-queue drain requeues the failing command on these
    /// errors so a retry resumes exactly where it stopped.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            MatchError::ReceiveTableFull
                | MatchError::UnexpectedStoreFull
                | MatchError::OutOfDeviceMemory { .. }
                | MatchError::SubmissionRingFull { .. }
        )
    }

    /// Whether the error is terminal for a command-queue drain: retrying
    /// the same command can never succeed, either because the engine is
    /// dead ([`MatchError::EngineStopped`]) or because the command itself
    /// is invalid ([`MatchError::HintViolation`] and friends). Terminal
    /// errors surface the unapplied commands to the caller instead of
    /// requeueing them — requeueing would spin a retry loop forever.
    pub fn is_terminal(&self) -> bool {
        !self.is_retryable()
    }
}

impl std::fmt::Display for MatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchError::ReceiveTableFull => {
                write!(
                    f,
                    "receive descriptor table full: fall back to software tag matching"
                )
            }
            MatchError::UnexpectedStoreFull => {
                write!(
                    f,
                    "unexpected message store full: fall back to software tag matching"
                )
            }
            MatchError::OutOfDeviceMemory {
                requested,
                available,
            } => write!(
                f,
                "out of DPA memory: requested {requested} B, {available} B available"
            ),
            MatchError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MatchError::UnknownCommunicator(id) => write!(f, "unknown communicator comm{id}"),
            MatchError::HintViolation(msg) => write!(f, "communicator hint violated: {msg}"),
            MatchError::SubmissionRingFull { comm } => write!(
                f,
                "submission ring for comm{comm} is full: drain the command queue and retry"
            ),
            MatchError::EngineStopped => write!(f, "matching engine already stopped"),
        }
    }
}

impl std::error::Error for MatchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_software_fallback_for_resource_exhaustion() {
        assert!(MatchError::ReceiveTableFull
            .to_string()
            .contains("software tag matching"));
        assert!(MatchError::UnexpectedStoreFull
            .to_string()
            .contains("software tag matching"));
    }

    #[test]
    fn display_reports_memory_numbers() {
        let e = MatchError::OutOfDeviceMemory {
            requested: 1024,
            available: 512,
        };
        let s = e.to_string();
        assert!(s.contains("1024"));
        assert!(s.contains("512"));
    }

    #[test]
    fn resource_exhaustion_is_retryable_everything_else_terminal() {
        assert!(MatchError::ReceiveTableFull.is_retryable());
        assert!(MatchError::UnexpectedStoreFull.is_retryable());
        assert!(MatchError::OutOfDeviceMemory {
            requested: 1,
            available: 0
        }
        .is_retryable());
        assert!(MatchError::SubmissionRingFull { comm: 1 }.is_retryable());
        assert!(MatchError::EngineStopped.is_terminal());
        assert!(MatchError::InvalidConfig("x".into()).is_terminal());
        assert!(MatchError::UnknownCommunicator(3).is_terminal());
        assert!(MatchError::HintViolation("x".into()).is_terminal());
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&MatchError::EngineStopped);
    }
}
