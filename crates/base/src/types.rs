//! Strongly-typed identifiers and ordering labels.
//!
//! MPI matches messages on the triple *(source rank, tag, communicator)*. The
//! matching constraints C1 (receives match in posted order) and C2 (messages
//! from one sender do not overtake each other) additionally require a total
//! order over posted receives and over incoming messages; [`PostLabel`] and
//! [`ArrivalSeq`] are those orders. [`SeqId`] identifies a *sequence of
//! compatible receives* (§III-D3a), the unit over which the fast conflict
//! resolution path may shift candidates.

use serde::{Deserialize, Serialize};

/// An MPI process rank within a communicator.
///
/// Concrete message envelopes always carry a defined rank; `MPI_ANY_SOURCE`
/// exists only on the receive side and is modelled by
/// [`SourceSel::Any`](crate::envelope::SourceSel::Any).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rank(pub u32);

impl Rank {
    /// Returns the raw rank number.
    #[inline]
    pub fn get(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

/// A user-defined MPI message tag.
///
/// Concrete message envelopes always carry a defined tag; `MPI_ANY_TAG` is
/// modelled by [`TagSel::Any`](crate::envelope::TagSel::Any).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tag(pub u32);

impl Tag {
    /// Returns the raw tag value.
    #[inline]
    pub fn get(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

/// An MPI communicator identifier.
///
/// Each communicator owns its own set of index tables (§IV-E); all matchers in
/// this workspace key their per-communicator state on this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CommId(pub u16);

impl CommId {
    /// `MPI_COMM_WORLD` — the default communicator used throughout the
    /// examples and benchmarks.
    pub const WORLD: CommId = CommId(0);

    /// Returns the raw communicator id.
    #[inline]
    pub fn get(self) -> u16 {
        self.0
    }
}

impl std::fmt::Display for CommId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == CommId::WORLD {
            write!(f, "WORLD")
        } else {
            write!(f, "comm{}", self.0)
        }
    }
}

/// Monotone label reflecting the order in which receives were posted.
///
/// The paper labels "each receive with a monotonically increasing counter that
/// reflects the posting order" (§III-C); after the optimistic phase a thread
/// holding up to four index candidates selects the one with the minimum label.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PostLabel(pub u64);

impl PostLabel {
    /// The first label handed out by a fresh matcher.
    pub const ZERO: PostLabel = PostLabel(0);

    /// Returns the label following this one.
    #[inline]
    #[must_use]
    pub fn next(self) -> PostLabel {
        PostLabel(self.0 + 1)
    }
}

/// Monotone sequence number reflecting message arrival order.
///
/// Constraint C2 is defined over this order: two messages from the same
/// sender matching the same receive must match in arrival order. Unexpected
/// messages are also consumed from the UMQ in this order.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ArrivalSeq(pub u64);

impl ArrivalSeq {
    /// The first arrival sequence number.
    pub const ZERO: ArrivalSeq = ArrivalSeq(0);

    /// Returns the sequence number following this one.
    #[inline]
    #[must_use]
    pub fn next(self) -> ArrivalSeq {
        ArrivalSeq(self.0 + 1)
    }
}

/// Identifier of a *sequence of compatible receives* (§III-D3a).
///
/// The host-side post path increments the sequence id whenever a newly posted
/// receive is not compatible with the previously posted one (different source
/// selector, tag selector or communicator). During fast-path conflict
/// resolution a thread verifies that its shifted candidate still belongs to
/// the same sequence and falls back to the slow path otherwise.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SeqId(pub u64);

impl SeqId {
    /// The sequence id assigned to the first posted receive.
    pub const ZERO: SeqId = SeqId(0);

    /// Returns the id of the next (incompatible) sequence.
    #[inline]
    #[must_use]
    pub fn next(self) -> SeqId {
        SeqId(self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_ordered_and_monotone() {
        let l = PostLabel::ZERO;
        assert!(l < l.next());
        assert!(l.next() < l.next().next());
        let s = ArrivalSeq::ZERO;
        assert!(s < s.next());
        let q = SeqId::ZERO;
        assert!(q < q.next());
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(Rank(3).to_string(), "rank3");
        assert_eq!(Tag(7).to_string(), "tag7");
        assert_eq!(CommId::WORLD.to_string(), "WORLD");
        assert_eq!(CommId(2).to_string(), "comm2");
    }

    #[test]
    fn raw_accessors_round_trip() {
        assert_eq!(Rank(42).get(), 42);
        assert_eq!(Tag(99).get(), 99);
        assert_eq!(CommId(5).get(), 5);
    }

    #[test]
    fn world_is_comm_zero() {
        assert_eq!(CommId::WORLD, CommId(0));
    }
}
