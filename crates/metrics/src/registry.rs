//! Labeled metrics registry: counters, gauges, and histograms keyed by a
//! `&'static str` name plus a small label set.
//!
//! Registration goes through a mutex, but it happens once at component
//! setup: `counter()`/`gauge()`/`histogram()` return `Arc` handles that
//! the hot path updates with relaxed atomics, never touching the registry
//! again. Snapshots walk the registry and copy every value out, producing
//! a [`RegistrySnapshot`] that supports diffing and both Prometheus text
//! and JSON exposition.

use crate::hist::{Histogram, HistogramSnapshot};
use crate::json::JsonWriter;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// A small, static label set (`&[("backend", "otm"), ("lane", "0")]`).
///
/// Label *keys* are static; values may be formatted at registration time.
pub type Labels = Vec<(&'static str, String)>;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// An instantaneous signed value (queue depth, pool occupancy, ...).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    /// Adds `n` (may be negative via `sub`).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }

    /// Raises the gauge to `v` if above the current value (high-water
    /// mark).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Relaxed);
    }
}

/// Fully qualified metric identity: name plus ordered labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: &'static str,
    labels: Labels,
}

impl Key {
    /// `name{k="v",..}` (Prometheus identity syntax; also used in JSON).
    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.to_string();
        }
        let mut out = String::from(self.name);
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            crate::json::escape_label_value(&mut out, v);
            out.push('"');
        }
        out.push('}');
        out
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<Key, Arc<Counter>>,
    gauges: BTreeMap<Key, Arc<Gauge>>,
    hists: BTreeMap<Key, Arc<Histogram>>,
}

/// A collection of named metrics.
///
/// Cloning is cheap (`Arc` inside); clones share the same metrics.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name` (no labels), creating
    /// it on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        self.counter_with(name, Vec::new())
    }

    /// Returns the counter registered under `name` + `labels`.
    pub fn counter_with(&self, name: &'static str, labels: Labels) -> Arc<Counter> {
        let key = Key { name, labels };
        Arc::clone(
            self.inner
                .lock()
                .expect("registry lock")
                .counters
                .entry(key)
                .or_default(),
        )
    }

    /// Returns the gauge registered under `name` (no labels).
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, Vec::new())
    }

    /// Returns the gauge registered under `name` + `labels`.
    pub fn gauge_with(&self, name: &'static str, labels: Labels) -> Arc<Gauge> {
        let key = Key { name, labels };
        Arc::clone(
            self.inner
                .lock()
                .expect("registry lock")
                .gauges
                .entry(key)
                .or_default(),
        )
    }

    /// Returns the histogram registered under `name` (no labels).
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        self.histogram_with(name, Vec::new())
    }

    /// Returns the histogram registered under `name` + `labels`.
    pub fn histogram_with(&self, name: &'static str, labels: Labels) -> Arc<Histogram> {
        let key = Key { name, labels };
        Arc::clone(
            self.inner
                .lock()
                .expect("registry lock")
                .hists
                .entry(key)
                .or_default(),
        )
    }

    /// Copies every metric's current value into an owned snapshot.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().expect("registry lock");
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.render(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.render(), g.get()))
                .collect(),
            hists: inner
                .hists
                .iter()
                .map(|(k, h)| (k.render(), h.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`Registry`]'s contents, keyed by the rendered
/// metric identity (`name{label="v"}`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots.
    pub hists: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Change since `prev`: counters and histograms are subtracted
    /// (saturating), gauges keep their current value (they are
    /// instantaneous, not cumulative). Metrics absent from `prev` appear
    /// with their full value.
    pub fn delta(&self, prev: &Self) -> Self {
        Self {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| {
                    let p = prev.counters.get(k).copied().unwrap_or(0);
                    (k.clone(), v.saturating_sub(p))
                })
                .collect(),
            gauges: self.gauges.clone(),
            hists: self
                .hists
                .iter()
                .map(|(k, h)| match prev.hists.get(k) {
                    Some(p) => (k.clone(), h.delta(p)),
                    None => (k.clone(), h.clone()),
                })
                .collect(),
        }
    }

    /// Element-wise sum of two snapshots (e.g. several workers' private
    /// registries). Gauges are summed too, which is the useful reading
    /// for additive gauges like queue depths.
    pub fn merge(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (k, &v) in &other.counters {
            *out.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            *out.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.hists {
            out.hists
                .entry(k.clone())
                .and_modify(|mine| *mine = mine.merge(h))
                .or_insert_with(|| h.clone());
        }
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Histograms are emitted as the conventional `_bucket`/`_sum`/
    /// `_count` triplet with cumulative `le` buckets.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(name);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for (name, v) in &self.gauges {
            out.push_str(name);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for (name, h) in &self.hists {
            // Split `name{labels}` so `le` can be appended to the set.
            let (base, labels) = match name.find('{') {
                Some(i) => (&name[..i], Some(&name[i + 1..name.len() - 1])),
                None => (&name[..], None),
            };
            let mut cumulative = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                let upper = crate::hist::bucket_upper_bound(i);
                out.push_str(base);
                out.push_str("_bucket{");
                if let Some(l) = labels {
                    out.push_str(l);
                    out.push(',');
                }
                out.push_str(&format!("le=\"{upper}\"}} {cumulative}\n"));
            }
            out.push_str(base);
            out.push_str("_bucket{");
            if let Some(l) = labels {
                out.push_str(l);
                out.push(',');
            }
            out.push_str(&format!("le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{base}_sum{} {}\n", label_suffix(labels), h.sum));
            out.push_str(&format!(
                "{base}_count{} {}\n",
                label_suffix(labels),
                h.count
            ));
        }
        out
    }

    /// Writes the snapshot as a JSON object with `counters`, `gauges`,
    /// and `histograms` sections.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("counters");
        w.begin_object();
        for (name, &v) in &self.counters {
            w.field_u64(name, v);
        }
        w.end_object();
        w.key("gauges");
        w.begin_object();
        for (name, &v) in &self.gauges {
            w.field_i64(name, v);
        }
        w.end_object();
        w.key("histograms");
        w.begin_object();
        for (name, h) in &self.hists {
            w.key(name);
            h.write_json(w);
        }
        w.end_object();
        w.end_object();
    }

    /// Renders the snapshot as a standalone JSON string.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

/// `{labels}` suffix for `_sum`/`_count` lines, or empty.
fn label_suffix(labels: Option<&str>) -> String {
    match labels {
        Some(l) => format!("{{{l}}}"),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("msgs_total");
        let b = r.counter("msgs_total");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("msgs_total").get(), 3);
        // Distinct labels are distinct metrics.
        let l0 = r.counter_with("lane_msgs", vec![("lane", "0".into())]);
        let l1 = r.counter_with("lane_msgs", vec![("lane", "1".into())]);
        l0.inc();
        assert_eq!(l1.get(), 0);
    }

    #[test]
    fn gauge_semantics() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.set(5);
        g.add(2);
        g.sub(3);
        assert_eq!(g.get(), 4);
        g.set_max(10);
        g.set_max(1);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn snapshot_and_delta() {
        let r = Registry::new();
        let c = r.counter("polls");
        let g = r.gauge("depth");
        let h = r.histogram("lat");
        c.add(10);
        g.set(3);
        h.record(7);
        let first = r.snapshot();
        c.add(5);
        g.set(1);
        h.record(9);
        let second = r.snapshot();
        let d = second.delta(&first);
        assert_eq!(d.counters["polls"], 5);
        assert_eq!(d.gauges["depth"], 1); // gauges report current value
        assert_eq!(d.hists["lat"].count, 1);
        assert_eq!(d.hists["lat"].sum, 9);
    }

    #[test]
    fn merge_sums_everything() {
        let a = {
            let r = Registry::new();
            r.counter("c").add(1);
            r.gauge("g").set(2);
            r.histogram("h").record(4);
            r.snapshot()
        };
        let b = {
            let r = Registry::new();
            r.counter("c").add(10);
            r.counter("only_b").inc();
            r.gauge("g").set(5);
            r.histogram("h").record(8);
            r.snapshot()
        };
        let m = a.merge(&b);
        assert_eq!(m.counters["c"], 11);
        assert_eq!(m.counters["only_b"], 1);
        assert_eq!(m.gauges["g"], 7);
        assert_eq!(m.hists["h"].count, 2);
        assert_eq!(m.hists["h"].sum, 12);
    }

    #[test]
    fn prometheus_exposition() {
        let r = Registry::new();
        r.counter_with("otm_msgs_total", vec![("path", "fast".into())])
            .add(3);
        r.gauge("dpa_cq_depth").set(2);
        let h = r.histogram("otm_search_depth");
        h.record(1);
        h.record(5);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("otm_msgs_total{path=\"fast\"} 3\n"));
        assert!(text.contains("dpa_cq_depth 2\n"));
        assert!(text.contains("otm_search_depth_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("otm_search_depth_bucket{le=\"7\"} 2\n"));
        assert!(text.contains("otm_search_depth_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("otm_search_depth_sum 6\n"));
        assert!(text.contains("otm_search_depth_count 2\n"));
    }

    #[test]
    fn exotic_label_values_stay_parseable() {
        // Regression: backslash, quote, and newline in a label value must
        // come out escaped per the Prometheus text-format spec on every
        // exposition path, or the line is unparseable.
        let hostile = "say \"hi\"\\\nbye".to_string();
        let r = Registry::new();
        r.counter_with("c_total", vec![("src", hostile.clone())])
            .inc();
        r.gauge_with("g", vec![("src", hostile.clone())]).set(2);
        r.histogram_with("h", vec![("src", hostile.clone())])
            .record(1);
        let snap = r.snapshot();
        let escaped = r#"src="say \"hi\"\\\nbye""#;
        let text = snap.to_prometheus();
        assert!(
            text.contains(&format!("c_total{{{escaped}}} 1\n")),
            "{text}"
        );
        assert!(text.contains(&format!("g{{{escaped}}} 2\n")));
        // Histogram exposition splices `le` into the same escaped set.
        assert!(text.contains(&format!("h_bucket{{{escaped},le=\"1\"}} 1\n")));
        assert!(text.contains(&format!("h_sum{{{escaped}}} 1\n")));
        // No line may carry a raw (unescaped) newline from a label value.
        for line in text.lines() {
            assert!(!line.is_empty(), "label newline leaked into exposition");
        }
        // The JSON mirror re-escapes the rendered identity as JSON string
        // content and must stay parseable too.
        let json = snap.to_json();
        assert!(
            json.contains(r#"c_total{src=\"say \\\"hi\\\"\\\\\\nbye\"}"#),
            "{json}"
        );
    }

    #[test]
    fn labeled_histogram_prometheus_merges_label_sets() {
        let r = Registry::new();
        r.histogram_with("lat", vec![("lane", "0".into())])
            .record(2);
        let text = r.snapshot().to_prometheus();
        assert!(
            text.contains("lat_bucket{lane=\"0\",le=\"3\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("lat_sum{lane=\"0\"} 2\n"));
        assert!(text.contains("lat_count{lane=\"0\"} 1\n"));
    }

    #[test]
    fn json_exposition_parses_shape() {
        let r = Registry::new();
        r.counter("c").inc();
        r.gauge("g").set(-4);
        r.histogram("h").record(3);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"counters\":{\"c\":1}"));
        assert!(json.contains("\"g\":-4"));
        assert!(json.contains("\"h\":{\"count\":1"));
    }

    #[test]
    fn empty_registry_snapshots_cleanly() {
        let r = Registry::new();
        let s = r.snapshot();
        assert_eq!(s.to_prometheus(), "");
        assert_eq!(
            s.to_json(),
            r#"{"counters":{},"gauges":{},"histograms":{}}"#
        );
    }
}
