//! **otm-metrics** — zero-dependency observability primitives for the OTM
//! workspace.
//!
//! Three building blocks, all safe to share across threads:
//!
//! * [`Histogram`] — a lock-free log2-bucketed histogram. Recording is a
//!   handful of relaxed atomic adds; quantiles (p50/p95/p99/max) are
//!   estimated from the bucket upper bounds at snapshot time.
//! * [`Registry`] — a process-wide (or per-component) collection of named
//!   counters, gauges, and histograms with an optional small label set.
//!   Handles are `Arc`s resolved once at setup; the hot path never touches
//!   the registry lock. [`Registry::snapshot`] produces a
//!   [`RegistrySnapshot`] that can be diffed ([`RegistrySnapshot::delta`]),
//!   rendered as Prometheus text exposition, or serialized to JSON.
//! * [`TraceRing`] — a bounded ring buffer of [`TraceEvent`]s (block
//!   start/end, conflict detected, fast-path shift, slow-path serialize,
//!   bounce-buffer spill) for post-mortem timeline dumps.
//!
//! On top of these sit the two flight-recorder layers:
//!
//! * [`SpanRecorder`] ([`span`]) — per-message lifecycle events
//!   (`posted` → `enqueued` → `packed` → `matched{path}`, plus
//!   `retransmitted`/`fell_back`) with explicit drop accounting, JSONL and
//!   Chrome `trace_event` export, and derived per-path post→match latency
//!   histograms.
//! * [`SeriesRecorder`] ([`series`]) — a rolling sampler that distills
//!   registry snapshots into Fig. 6/7-style time-series curves at a fixed
//!   virtual-time cadence, rendered as a columnar JSON artifact.
//!
//! The crate deliberately has **no dependencies**: JSON is emitted by a
//! tiny hand-rolled writer ([`json`]), timestamps come from a monotonic
//! process-start epoch ([`now_ns`]). Consumers feature-gate their use of
//! this crate so that disabling metrics compiles instrumentation down to
//! no-ops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod json;
pub mod registry;
pub mod series;
pub mod span;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, Labels, Registry, RegistrySnapshot};
pub use series::{tenant_sections_json, SeriesPoint, SeriesRecorder};
pub use span::{
    latency_by_path, spans_to_chrome_trace, spans_to_jsonl, KnobKind, MatchPath, SpanEvent,
    SpanKind, SpanRecorder, MATCH_PATHS, RECV_SUBJECT_BIT,
};
pub use trace::{EventKind, TraceEvent, TraceRing};

use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds since the first call to `now_ns` in this process.
///
/// A monotonic, process-local epoch: cheap, strictly non-decreasing, and
/// comparable across threads. Used to timestamp [`TraceEvent`]s.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::now_ns;

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
