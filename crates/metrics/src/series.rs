//! Rolling time-series sampler — the curve half of the flight recorder.
//!
//! End-of-run registry snapshots say *how much*; the paper's Fig. 6/7 say
//! *when*. A [`SeriesRecorder`] closes that gap: at a fixed virtual-time
//! cadence it distills a [`RegistrySnapshot`] into one [`SeriesPoint`]
//! (queue depth, cumulative block occupancy, per-path match counts,
//! retransmits, fallbacks) and appends it to an in-memory series that
//! renders as a **columnar JSON artifact** (`experiments/fig8_series.json`).
//!
//! Virtual time is whatever the host component counts deterministically —
//! the simulator's poll counter, the drain round, the replay op index —
//! so the same seed and cadence always reproduce a byte-identical
//! artifact. The sampled values are *cumulative* (counters as-is, the
//! occupancy as the histogram's running mean): plotting deltas between
//! adjacent points recovers the instantaneous curves, and the terminal
//! point must equal the end-of-run snapshot — a self-consistency
//! invariant the test suite pins.

use crate::json::JsonWriter;
use crate::registry::RegistrySnapshot;
use crate::span::MATCH_PATHS;

/// Registry keys the sampler distills, in artifact order.
mod keys {
    /// Per-path resolution counters (`{path="nc"|"wc_fp"|"wc_sp"|"post"}`).
    pub const RESOLUTIONS: &str = "otm_resolutions_total";
    /// Total matched pairs (all paths).
    pub const MATCHED: &str = "otm_matched_total";
    /// Go-back-N retransmissions.
    pub const RETRANSMITS: &str = "dpa_retransmits_total";
    /// Software-fallback migrations.
    pub const FALLBACKS: &str = "dpa_fallbacks_total";
    /// Block fill-level histogram (running mean → occupancy curve).
    pub const OCCUPANCY: &str = "otm_block_occupancy";
}

/// One sampled point of the run's time series. All counter-derived fields
/// are cumulative since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Virtual timestamp (polls, drain rounds, replay ops — host-defined).
    pub t: u64,
    /// Instantaneous submission/completion queue depth, supplied by the
    /// host (the one value a registry snapshot cannot attribute itself).
    pub queue_depth: u64,
    /// Running mean block occupancy (`otm_block_occupancy` sum/count), or
    /// 0 before the first block executes.
    pub block_occupancy: f64,
    /// Cumulative matches per resolution path, indexed by
    /// [`crate::span::MatchPath::index`] (`nc`, `wc_fp`, `wc_sp`, `post`).
    pub path_counts: [u64; 4],
    /// Cumulative matched pairs across all paths (`otm_matched_total`).
    pub matched: u64,
    /// Cumulative go-back-N retransmissions.
    pub retransmits: u64,
    /// Cumulative software-fallback migrations.
    pub fallbacks: u64,
}

impl SeriesPoint {
    /// Distills a registry snapshot (plus the host-supplied queue depth)
    /// into one point at virtual time `t`. Absent metrics read as zero, so
    /// engine-only and full-service snapshots share one schema.
    pub fn distill(t: u64, queue_depth: u64, snap: &RegistrySnapshot) -> Self {
        let counter = |key: &str| snap.counters.get(key).copied().unwrap_or(0);
        let mut path_counts = [0u64; 4];
        for path in MATCH_PATHS {
            path_counts[path.index()] = counter(&format!(
                "{}{{path=\"{}\"}}",
                keys::RESOLUTIONS,
                path.label()
            ));
        }
        let block_occupancy = snap
            .hists
            .get(keys::OCCUPANCY)
            .filter(|h| h.count > 0)
            .map(|h| h.sum as f64 / h.count as f64)
            .unwrap_or(0.0);
        SeriesPoint {
            t,
            queue_depth,
            block_occupancy,
            path_counts,
            matched: counter(keys::MATCHED),
            retransmits: counter(keys::RETRANSMITS),
            fallbacks: counter(keys::FALLBACKS),
        }
    }
}

/// Samples a registry at a fixed virtual-time cadence into a columnar
/// series.
///
/// ```
/// use otm_metrics::{Registry, SeriesRecorder};
///
/// let r = Registry::new();
/// let matched = r.counter("otm_matched_total");
/// let mut series = SeriesRecorder::new(10);
/// for t in 0..25 {
///     matched.inc();
///     if series.due(t) {
///         series.sample(t, 0, &r.snapshot());
///     }
/// }
/// // Samples landed at t = 0, 10, 20.
/// assert_eq!(series.len(), 3);
/// assert_eq!(series.last().unwrap().matched, 21);
/// ```
#[derive(Debug, Clone)]
pub struct SeriesRecorder {
    cadence: u64,
    next_due: u64,
    points: Vec<SeriesPoint>,
}

impl SeriesRecorder {
    /// A recorder sampling every `cadence` virtual-time units (the first
    /// sample is due immediately). A zero cadence is promoted to 1.
    pub fn new(cadence: u64) -> Self {
        SeriesRecorder {
            cadence: cadence.max(1),
            next_due: 0,
            points: Vec::new(),
        }
    }

    /// The sampling cadence in virtual-time units.
    pub fn cadence(&self) -> u64 {
        self.cadence
    }

    /// Whether a sample is due at virtual time `t`. Checking is free —
    /// hosts call this every tick and only snapshot when it answers yes.
    #[inline]
    pub fn due(&self, t: u64) -> bool {
        t >= self.next_due
    }

    /// Samples `snap` at virtual time `t` if one is due; returns whether a
    /// point was recorded. The next sample falls due a full cadence after
    /// `t`, so bursty hosts that skip ticks never double-sample.
    pub fn sample(&mut self, t: u64, queue_depth: u64, snap: &RegistrySnapshot) -> bool {
        if !self.due(t) {
            return false;
        }
        self.force_sample(t, queue_depth, snap);
        true
    }

    /// Samples unconditionally — the terminal end-of-run point every
    /// artifact needs regardless of where the cadence grid fell. A sample
    /// at the same `t` as the last point *replaces* it (refreshing its
    /// values), so the series stays strictly increasing in `t`.
    pub fn force_sample(&mut self, t: u64, queue_depth: u64, snap: &RegistrySnapshot) {
        let point = SeriesPoint::distill(t, queue_depth, snap);
        match self.points.last_mut() {
            Some(last) if last.t == t => *last = point,
            _ => self.points.push(point),
        }
        self.next_due = t.saturating_add(self.cadence);
    }

    /// Recorded points, oldest first.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether nothing has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The most recent point (the terminal cumulative values once the run
    /// has finished — compare against the final registry snapshot).
    pub fn last(&self) -> Option<&SeriesPoint> {
        self.points.last()
    }

    /// Writes the series as a columnar JSON object:
    ///
    /// ```json
    /// {"cadence": N, "samples": N,
    ///  "t": [...], "queue_depth": [...], "block_occupancy": [...],
    ///  "path_counts": {"nc": [...], "wc_fp": [...], "wc_sp": [...], "post": [...]},
    ///  "matched": [...], "retransmits": [...], "fallbacks": [...]}
    /// ```
    ///
    /// Columns beat rows here: the artifact feeds plotting scripts that
    /// want one array per curve, and columnar JSON diffs cleanly in git.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("cadence", self.cadence);
        w.field_u64("samples", self.points.len() as u64);
        w.key("t");
        w.begin_array();
        for p in &self.points {
            w.value_u64(p.t);
        }
        w.end_array();
        w.key("queue_depth");
        w.begin_array();
        for p in &self.points {
            w.value_u64(p.queue_depth);
        }
        w.end_array();
        w.key("block_occupancy");
        w.begin_array();
        for p in &self.points {
            w.value_f64(p.block_occupancy);
        }
        w.end_array();
        w.key("path_counts");
        w.begin_object();
        for path in MATCH_PATHS {
            w.key(path.label());
            w.begin_array();
            for p in &self.points {
                w.value_u64(p.path_counts[path.index()]);
            }
            w.end_array();
        }
        w.end_object();
        w.key("matched");
        w.begin_array();
        for p in &self.points {
            w.value_u64(p.matched);
        }
        w.end_array();
        w.key("retransmits");
        w.begin_array();
        for p in &self.points {
            w.value_u64(p.retransmits);
        }
        w.end_array();
        w.key("fallbacks");
        w.begin_array();
        for p in &self.points {
            w.value_u64(p.fallbacks);
        }
        w.end_array();
        w.end_object();
    }

    /// Renders the series as a standalone JSON string (deterministic for a
    /// deterministic run: same seed + same cadence ⇒ byte-identical).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

/// Renders one multi-tenant series artifact: a `global` section holding the
/// server-wide series plus a `tenants` object with one section per tenant
/// label, each in the same columnar [`SeriesRecorder::write_json`] schema.
///
/// ```json
/// {"global": {...}, "tenants": {"0": {...}, "1": {...}}}
/// ```
///
/// Sections are emitted in the order given; the `matchd` server passes its
/// tenants in id order, so a deterministic run renders byte-identical
/// artifacts.
pub fn tenant_sections_json(
    global: &SeriesRecorder,
    sections: &[(String, &SeriesRecorder)],
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("global");
    global.write_json(&mut w);
    w.key("tenants");
    w.begin_object();
    for (label, series) in sections {
        w.key(label);
        series.write_json(&mut w);
    }
    w.end_object();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::span::MatchPath;

    fn populated_registry() -> Registry {
        let r = Registry::new();
        r.counter_with("otm_resolutions_total", vec![("path", "nc".into())])
            .add(7);
        r.counter_with("otm_resolutions_total", vec![("path", "wc_sp".into())])
            .add(2);
        r.counter("otm_matched_total").add(9);
        r.counter("dpa_retransmits_total").add(4);
        let h = r.histogram("otm_block_occupancy");
        h.record(2);
        h.record(4);
        r
    }

    #[test]
    fn distill_reads_the_fig8_keys() {
        let p = SeriesPoint::distill(5, 3, &populated_registry().snapshot());
        assert_eq!(p.t, 5);
        assert_eq!(p.queue_depth, 3);
        assert_eq!(p.path_counts, [7, 0, 2, 0]);
        assert_eq!(p.matched, 9);
        assert_eq!(p.retransmits, 4);
        assert_eq!(p.fallbacks, 0, "absent counters read as zero");
        assert!((p.block_occupancy - 3.0).abs() < 1e-9);
    }

    #[test]
    fn cadence_gates_sampling() {
        let r = populated_registry();
        let mut s = SeriesRecorder::new(10);
        let mut recorded = 0;
        for t in 0..35 {
            if s.sample(t, 0, &r.snapshot()) {
                recorded += 1;
            }
        }
        assert_eq!(recorded, 4);
        let ts: Vec<u64> = s.points().iter().map(|p| p.t).collect();
        assert_eq!(ts, vec![0, 10, 20, 30]);
    }

    #[test]
    fn skipped_ticks_do_not_double_sample() {
        // A host that only polls at t = 0 and t = 25 gets two samples, not
        // a backlog of three.
        let r = Registry::new();
        let mut s = SeriesRecorder::new(10);
        assert!(s.sample(0, 0, &r.snapshot()));
        assert!(s.sample(25, 0, &r.snapshot()));
        assert!(!s.sample(26, 0, &r.snapshot()), "next due at 35");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn terminal_point_equals_final_snapshot() {
        // The self-consistency invariant: the last sampled point carries
        // exactly the end-of-run cumulative values.
        let r = Registry::new();
        let nc = r.counter_with("otm_resolutions_total", vec![("path", "nc".into())]);
        let matched = r.counter("otm_matched_total");
        let mut s = SeriesRecorder::new(4);
        for t in 0..17 {
            nc.inc();
            matched.inc();
            if s.due(t) {
                s.sample(t, 1, &r.snapshot());
            }
        }
        let end = r.snapshot();
        s.force_sample(17, 0, &end);
        let last = *s.last().unwrap();
        assert_eq!(last, SeriesPoint::distill(17, 0, &end));
        assert_eq!(last.matched, 17);
        assert_eq!(last.path_counts[MatchPath::Nc.index()], 17);
    }

    #[test]
    fn same_inputs_yield_byte_identical_artifacts() {
        // Determinism satellite: same seed + cadence ⇒ identical bytes.
        let run = || {
            let r = populated_registry();
            let mut s = SeriesRecorder::new(8);
            for t in 0..64 {
                if t % 3 == 0 {
                    r.counter("otm_matched_total").inc();
                }
                if s.due(t) {
                    s.sample(t, t % 5, &r.snapshot());
                }
            }
            s.to_json()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.contains("\"cadence\":8"));
    }

    #[test]
    fn columnar_json_shape() {
        let mut s = SeriesRecorder::new(2);
        let r = populated_registry();
        s.sample(0, 5, &r.snapshot());
        s.sample(2, 3, &r.snapshot());
        let json = s.to_json();
        assert!(json.starts_with(r#"{"cadence":2,"samples":2,"t":[0,2],"#));
        assert!(json.contains(r#""queue_depth":[5,3]"#));
        assert!(json.contains(r#""block_occupancy":[3,3]"#));
        assert!(
            json.contains(r#""path_counts":{"nc":[7,7],"wc_fp":[0,0],"wc_sp":[2,2],"post":[0,0]}"#)
        );
        assert!(json.contains(r#""matched":[9,9]"#));
        assert!(json.contains(r#""retransmits":[4,4]"#));
        assert!(json.ends_with(r#""fallbacks":[0,0]}"#));
    }

    #[test]
    fn empty_series_renders_cleanly() {
        let s = SeriesRecorder::new(16);
        assert!(s.is_empty());
        assert_eq!(
            s.to_json(),
            r#"{"cadence":16,"samples":0,"t":[],"queue_depth":[],"block_occupancy":[],"path_counts":{"nc":[],"wc_fp":[],"wc_sp":[],"post":[]},"matched":[],"retransmits":[],"fallbacks":[]}"#
        );
    }
}
