//! A tiny hand-rolled JSON writer.
//!
//! Keeps the crate dependency-free: the exposition formats only need
//! objects, arrays, strings, numbers, and null. Commas are inserted
//! automatically; the caller is responsible for pairing `begin_*`/`end_*`
//! calls.

/// Streaming JSON writer producing a compact (no-whitespace) document.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Whether the next value/key at the current nesting level needs a
    /// leading comma.
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer and returns the accumulated JSON text.
    pub fn finish(self) -> String {
        self.out
    }

    fn before_value(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
    }

    /// Opens a JSON object (`{`).
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.need_comma.push(false);
    }

    /// Closes the current object (`}`).
    pub fn end_object(&mut self) {
        self.need_comma.pop();
        self.out.push('}');
    }

    /// Opens a JSON array (`[`).
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.need_comma.push(false);
    }

    /// Closes the current array (`]`).
    pub fn end_array(&mut self) {
        self.need_comma.pop();
        self.out.push(']');
    }

    /// Emits an object key; must be followed by exactly one value.
    pub fn key(&mut self, name: &str) {
        self.before_value();
        write_escaped(&mut self.out, name);
        self.out.push(':');
        // The value that follows must not add its own comma.
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
    }

    /// Emits a string value.
    pub fn value_str(&mut self, v: &str) {
        self.before_value();
        write_escaped(&mut self.out, v);
    }

    /// Emits an unsigned integer value.
    pub fn value_u64(&mut self, v: u64) {
        self.before_value();
        self.out.push_str(&v.to_string());
    }

    /// Emits a signed integer value.
    pub fn value_i64(&mut self, v: i64) {
        self.before_value();
        self.out.push_str(&v.to_string());
    }

    /// Emits a float value (`null` when not finite, as JSON has no NaN).
    pub fn value_f64(&mut self, v: f64) {
        self.before_value();
        if v.is_finite() {
            self.out.push_str(&format!("{v}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Emits a `null`.
    pub fn value_null(&mut self) {
        self.before_value();
        self.out.push_str("null");
    }

    /// `key` + string value.
    pub fn field_str(&mut self, name: &str, v: &str) {
        self.key(name);
        self.value_str(v);
    }

    /// `key` + unsigned integer value.
    pub fn field_u64(&mut self, name: &str, v: u64) {
        self.key(name);
        self.value_u64(v);
    }

    /// `key` + signed integer value.
    pub fn field_i64(&mut self, name: &str, v: i64) {
        self.key(name);
        self.value_i64(v);
    }

    /// `key` + float value.
    pub fn field_f64(&mut self, name: &str, v: f64) {
        self.key(name);
        self.value_f64(v);
    }

    /// `key` + `null`.
    pub fn field_null(&mut self, name: &str) {
        self.key(name);
        self.value_null();
    }
}

/// Appends `s` with backslash, double-quote, and newline escaped — the
/// exact three escapes the Prometheus text exposition format defines for
/// label values. Shared by the registry's metric-identity renderer so
/// every exposition path (Prometheus text and the JSON mirror, which keys
/// metrics by the same rendered identity) escapes identically.
pub fn escape_label_value(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Appends `s` as a quoted, escaped JSON string.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_with_mixed_fields() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "hist");
        w.field_u64("count", 3);
        w.field_i64("delta", -2);
        w.field_f64("mean", 1.5);
        w.field_null("p99");
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"hist","count":3,"delta":-2,"mean":1.5,"p99":null}"#
        );
    }

    #[test]
    fn nested_arrays_and_objects() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("buckets");
        w.begin_array();
        for (u, c) in [(1u64, 2u64), (3, 4)] {
            w.begin_array();
            w.value_u64(u);
            w.value_u64(c);
            w.end_array();
        }
        w.end_array();
        w.key("inner");
        w.begin_object();
        w.field_u64("x", 1);
        w.end_object();
        w.end_object();
        assert_eq!(w.finish(), r#"{"buckets":[[1,2],[3,4]],"inner":{"x":1}}"#);
    }

    #[test]
    fn string_escaping() {
        let mut w = JsonWriter::new();
        w.value_str("a\"b\\c\nd\u{1}");
        assert_eq!(w.finish(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn label_value_escaping_covers_the_spec_triple() {
        let mut out = String::new();
        escape_label_value(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "a\\\"b\\\\c\\nd");
        // Other control characters pass through untouched — the text
        // format only defines the three escapes above.
        let mut tab = String::new();
        escape_label_value(&mut tab, "x\ty");
        assert_eq!(tab, "x\ty");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.value_f64(f64::NAN);
        w.value_f64(f64::INFINITY);
        w.value_f64(2.0);
        w.end_array();
        assert_eq!(w.finish(), "[null,null,2]");
    }
}
