//! Lock-free log2-bucketed histogram.
//!
//! Values are `u64`s (durations in nanoseconds, search depths, queue
//! lengths, ...). Bucket 0 counts exact zeros; bucket `i >= 1` counts
//! values in `[2^(i-1), 2^i - 1]`, so 65 buckets cover the full `u64`
//! range. Recording is three relaxed `fetch_add`s plus a `fetch_max`;
//! there is no locking anywhere and recording from many threads
//! concurrently is safe (totals are exact, per-bucket counts are exact,
//! only the cross-field consistency of a concurrent snapshot is
//! approximate).

use crate::json::JsonWriter;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of log2 buckets: one for zero plus one per bit of `u64`.
pub const NUM_BUCKETS: usize = 65;

/// Index of the bucket that counts `value`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `i` (saturating at `u64::MAX`).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free log2-bucketed histogram of `u64` values.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [(); NUM_BUCKETS].map(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Number of observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all observations recorded so far.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Largest observation recorded so far (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Captures a point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(self.counts.iter()) {
            *slot = bucket.load(Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Relaxed),
            count: self.count.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }

    /// Resets every bucket and total to zero.
    ///
    /// Not atomic with respect to concurrent `record` calls; intended for
    /// between-phase resets when recorders are quiescent.
    pub fn reset(&self) {
        for bucket in &self.counts {
            bucket.store(0, Relaxed);
        }
        self.sum.store(0, Relaxed);
        self.count.store(0, Relaxed);
        self.max.store(0, Relaxed);
    }
}

/// An owned, immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; NUM_BUCKETS],
    /// Sum of all observations.
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (no observations).
    pub fn empty() -> Self {
        Self {
            buckets: [0; NUM_BUCKETS],
            sum: 0,
            count: 0,
            max: 0,
        }
    }

    /// Mean of the recorded values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Estimates the `q`-quantile (`0.0 <= q <= 1.0`), or `None` when
    /// empty.
    ///
    /// The estimate is the upper bound of the first bucket whose
    /// cumulative count reaches `q * count`, clamped to the recorded
    /// maximum, so it errs high by at most a factor of two.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return Some(bucket_upper_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median estimate (`quantile(0.5)`).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Element-wise sum of two snapshots (e.g. across workers).
    pub fn merge(&self, other: &Self) -> Self {
        let mut buckets = self.buckets;
        for (slot, &c) in buckets.iter_mut().zip(other.buckets.iter()) {
            *slot += c;
        }
        Self {
            buckets,
            sum: self.sum + other.sum,
            count: self.count + other.count,
            max: self.max.max(other.max),
        }
    }

    /// Observations recorded since `prev` was taken (saturating, so a
    /// reset between snapshots yields `self` rather than garbage).
    pub fn delta(&self, prev: &Self) -> Self {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_sub(prev.buckets[i]);
        }
        Self {
            buckets,
            sum: self.sum.saturating_sub(prev.sum),
            count: self.count.saturating_sub(prev.count),
            max: self.max,
        }
    }

    /// Writes the snapshot as a JSON object:
    /// `{"count":..,"sum":..,"max":..,"mean":..,"p50":..,"p95":..,"p99":..,
    ///   "buckets":[[upper,count],..]}` (only non-empty buckets listed).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("count", self.count);
        w.field_u64("sum", self.sum);
        w.field_u64("max", self.max);
        match self.mean() {
            Some(m) => w.field_f64("mean", m),
            None => w.field_null("mean"),
        }
        for (name, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
            match self.quantile(q) {
                Some(v) => w.field_u64(name, v),
                None => w.field_null(name),
            }
        }
        w.key("buckets");
        w.begin_array();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c != 0 {
                w.begin_array();
                w.value_u64(bucket_upper_bound(i));
                w.value_u64(c);
                w.end_array();
            }
        }
        w.end_array();
        w.end_object();
    }

    /// Renders the snapshot as a standalone JSON string.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_at_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        // Every power of two opens a new bucket; its predecessor closes one.
        for bit in 1..64 {
            let v = 1u64 << bit;
            assert_eq!(bucket_index(v), bit + 1, "2^{bit}");
            assert_eq!(bucket_index(v - 1), bit, "2^{bit} - 1");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        // Upper bounds agree with the index mapping.
        for i in 1..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
        }
        assert_eq!(bucket_upper_bound(0), 0);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        let s = h.snapshot();
        assert_eq!(s, HistogramSnapshot::empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.p99(), None);
    }

    #[test]
    fn totals_and_max() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.max(), 100);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[7], 1); // 100 in [64, 127]
        assert!((s.mean().unwrap() - 21.2).abs() < 1e-9);
    }

    #[test]
    fn quantiles_on_known_distribution() {
        // 100 observations of 1, one of 1000: p50/p95 sit in the ones,
        // p99+ reaches the outlier's bucket (clamped to the true max).
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(1);
        }
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.p50(), Some(1));
        assert_eq!(s.p95(), Some(1));
        assert_eq!(s.quantile(1.0), Some(1000));
        // Uniform 1..=8: p50 within a bucket of 4, never above 8.
        let h = Histogram::new();
        for v in 1..=8 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.p50().unwrap();
        assert!((3..=7).contains(&p50), "p50 = {p50}");
        assert!(s.quantile(1.0).unwrap() <= 8);
    }

    #[test]
    fn quantile_estimate_errs_high_within_bucket() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(5); // bucket [4, 7]
        }
        let s = h.snapshot();
        // Upper bound of the bucket is 7, but clamped to the observed max.
        assert_eq!(s.p50(), Some(5));
        assert_eq!(s.p99(), Some(5));
    }

    #[test]
    fn concurrent_record() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.max, 39_999);
        // Sum of 0..40000.
        assert_eq!(s.sum, 39_999 * 40_000 / 2);
        assert_eq!(s.buckets.iter().sum::<u64>(), 40_000);
    }

    #[test]
    fn merge_and_delta() {
        let a = {
            let h = Histogram::new();
            h.record(1);
            h.record(100);
            h.snapshot()
        };
        let b = {
            let h = Histogram::new();
            h.record(2);
            h.snapshot()
        };
        let m = a.merge(&b);
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 103);
        assert_eq!(m.max, 100);
        let d = m.delta(&a);
        assert_eq!(d.count, 1);
        assert_eq!(d.sum, 2);
        // Deltas of identical snapshots are empty except max (a gauge-like
        // high-water mark, intentionally carried over).
        let z = a.delta(&a);
        assert_eq!(z.count, 0);
        assert_eq!(z.sum, 0);
        assert!(z.buckets.iter().all(|&c| c == 0));
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::empty());
    }

    #[test]
    fn json_shape() {
        let h = Histogram::new();
        h.record(3);
        let json = h.snapshot().to_json();
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"sum\":3"));
        assert!(json.contains("\"p99\":3"));
        assert!(json.contains("\"buckets\":[[3,1]]"));
        let empty = HistogramSnapshot::empty().to_json();
        assert!(empty.contains("\"mean\":null"));
    }
}
