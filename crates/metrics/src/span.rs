//! Per-message lifecycle spans — the event half of the flight recorder.
//!
//! A *span* is the sequence of stamped events one message (or receive, or
//! wire packet) passes through on its way from submission to completion:
//! `posted`, `enqueued`, `packed{block_id, occupancy}`, `matched{path}`,
//! `retransmitted{attempt}`, `fell_back`. Components push [`SpanEvent`]s
//! into a shared [`SpanRecorder`] — a bounded ring with an **explicit
//! dropped-events counter** (unlike the silent-overwrite [`crate::TraceRing`],
//! every overwritten event is accounted for) — and the recorder can replay
//! the retained window as:
//!
//! * **JSONL** ([`SpanRecorder::to_jsonl`]): one JSON object per line, easy
//!   to grep and to stream-parse;
//! * **Chrome `trace_event` JSON** ([`SpanRecorder::to_chrome_trace`]): the
//!   `{"traceEvents": [...]}` envelope that <https://ui.perfetto.dev> and
//!   `chrome://tracing` open directly, with one track (`tid`) per subject;
//! * **per-path post→match latency histograms**
//!   ([`SpanRecorder::latency_by_path`]): for every subject whose span
//!   contains a `Matched` event, the nanoseconds between its first recorded
//!   event and the match, bucketed by resolution path — the data behind the
//!   paper's NC / WC-FP / WC-SP latency split.
//!
//! Timestamps come from [`crate::now_ns`] (nanoseconds since the first
//! observation in the process), so one run's engine- and service-side spans
//! share a timeline. [`SpanRecorder::push_at`] accepts explicit timestamps
//! for deterministic tests.
//!
//! The recorder itself carries no feature gates — the *instrumented* crates
//! (`otm`, `dpa-sim`) only construct and feed one under their `trace-events`
//! feature, and compile the calls away entirely otherwise.

use crate::hist::{Histogram, HistogramSnapshot};
use crate::json::JsonWriter;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// The resolution path a match took (Fig. 8's series), plus the post-time
/// UMQ hit the block paths never see.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MatchPath {
    /// No conflict: the optimistic booking was consumed outright (NC).
    Nc,
    /// With conflict, fast path: rank-shift along a compatible sequence
    /// (WC-FP).
    WcFp,
    /// With conflict, slow path: serialize and re-search (WC-SP).
    WcSp,
    /// Matched at post time against the unexpected-message queue — the
    /// receive-side path that never enters a block.
    Post,
}

/// All match paths, in label order.
pub const MATCH_PATHS: [MatchPath; 4] = [
    MatchPath::Nc,
    MatchPath::WcFp,
    MatchPath::WcSp,
    MatchPath::Post,
];

/// High bit set on span subjects that are *receive* handles, keeping them
/// disjoint from message-handle subjects: a posted receive and an incoming
/// message may share the same small integer id, and without the namespace
/// split their spans would merge into one bogus lifecycle (and corrupt the
/// [`latency_by_path`] pairing).
pub const RECV_SUBJECT_BIT: u64 = 1 << 63;

impl MatchPath {
    /// The `path` label value used across the registry and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            MatchPath::Nc => "nc",
            MatchPath::WcFp => "wc_fp",
            MatchPath::WcSp => "wc_sp",
            MatchPath::Post => "post",
        }
    }

    /// Dense index (for per-path arrays), matching [`MATCH_PATHS`] order.
    pub fn index(self) -> usize {
        match self {
            MatchPath::Nc => 0,
            MatchPath::WcFp => 1,
            MatchPath::WcSp => 2,
            MatchPath::Post => 3,
        }
    }
}

/// What happened to the subject at one point of its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A receive was posted into the engine's index structures.
    Posted,
    /// A command entered the submission queue.
    Enqueued,
    /// The drain packed the message into an optimistic block.
    Packed {
        /// Monotone per-engine block sequence number.
        block_id: u64,
        /// Arrivals the block carried (its fill level).
        occupancy: u32,
    },
    /// The message (or receive) matched.
    Matched {
        /// Which resolution path produced the pairing.
        path: MatchPath,
    },
    /// The reliability layer retransmitted the packet (go-back-N resend).
    Retransmitted {
        /// 1-based retransmit attempt for the current window.
        attempt: u32,
    },
    /// The message was migrated to software matching by a fallback.
    FellBack,
    /// The feedback controller changed a runtime knob. Stamped on a
    /// synthetic subject (the controller has no message identity) so every
    /// actuation is reproducible from the trace alone.
    KnobChanged {
        /// Which knob moved.
        knob: KnobKind,
        /// Value before the change.
        from: u64,
        /// Value after the change.
        to: u64,
    },
}

/// The runtime knobs the feedback controller may actuate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobKind {
    /// The reliability layer's unacked-window size hint.
    ReliabilityWindow,
    /// The service's inline drain-retry budget for ring backpressure.
    DrainRetryBudget,
    /// The drain packing policy (encoded 0 = consecutive, 1 = cross-comm).
    PackingPolicy,
    /// The drain packing-window override (0 = engine default).
    PackingWindow,
}

impl KnobKind {
    /// The `knob` label value used across artifacts.
    pub fn label(self) -> &'static str {
        match self {
            KnobKind::ReliabilityWindow => "reliability_window",
            KnobKind::DrainRetryBudget => "drain_retry_budget",
            KnobKind::PackingPolicy => "packing_policy",
            KnobKind::PackingWindow => "packing_window",
        }
    }
}

impl SpanKind {
    /// Stable event name used in both export formats.
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Posted => "posted",
            SpanKind::Enqueued => "enqueued",
            SpanKind::Packed { .. } => "packed",
            SpanKind::Matched { .. } => "matched",
            SpanKind::Retransmitted { .. } => "retransmitted",
            SpanKind::FellBack => "fell_back",
            SpanKind::KnobChanged { .. } => "knob_changed",
        }
    }
}

/// One stamped lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Nanoseconds since the process's first observation ([`crate::now_ns`]).
    pub t_ns: u64,
    /// The subject's identity: message handle for arrivals, receive handle
    /// for posts, sequence number for wire packets.
    pub subject: u64,
    /// What happened.
    pub kind: SpanKind,
    /// Global push order (gaps reveal nothing — the ring never skips; the
    /// oldest retained event's `seq` reveals how many were dropped).
    pub seq: u64,
}

/// Bounded, thread-safe ring of [`SpanEvent`]s with explicit drop
/// accounting.
///
/// ```
/// use otm_metrics::{MatchPath, SpanKind, SpanRecorder};
///
/// let spans = SpanRecorder::new(4);
/// spans.push_at(10, 1, SpanKind::Enqueued);
/// spans.push_at(25, 1, SpanKind::Matched { path: MatchPath::Nc });
/// assert_eq!(spans.dropped(), 0);
/// let hists = spans.latency_by_path();
/// assert_eq!(hists[MatchPath::Nc.index()].count, 1);
/// assert_eq!(hists[MatchPath::Nc.index()].sum, 15);
/// ```
#[derive(Debug)]
pub struct SpanRecorder {
    inner: Mutex<Inner>,
    capacity: usize,
    /// Total events ever pushed (monotone).
    pushed: AtomicU64,
    /// Events overwritten because the ring was full (monotone). The
    /// explicit counter the silent [`crate::TraceRing`] historically lacked.
    dropped: AtomicU64,
}

#[derive(Debug, Default)]
struct Inner {
    ring: VecDeque<SpanEvent>,
    next_seq: u64,
}

impl SpanRecorder {
    /// A recorder retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        SpanRecorder {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            pushed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stamps and records one event. Returns `true` if an old event was
    /// dropped to make room (so callers can mirror the loss into a registry
    /// counter).
    #[inline]
    pub fn push(&self, subject: u64, kind: SpanKind) -> bool {
        self.push_at(crate::now_ns(), subject, kind)
    }

    /// Records one event with an explicit timestamp (deterministic tests).
    /// Returns `true` if an old event was dropped to make room.
    pub fn push_at(&self, t_ns: u64, subject: u64, kind: SpanKind) -> bool {
        let mut inner = self.inner.lock().expect("span ring lock");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let overflowed = inner.ring.len() == self.capacity;
        if overflowed {
            inner.ring.pop_front();
            self.dropped.fetch_add(1, Relaxed);
        }
        inner.ring.push_back(SpanEvent {
            t_ns,
            subject,
            kind,
            seq,
        });
        self.pushed.fetch_add(1, Relaxed);
        overflowed
    }

    /// Total events ever pushed.
    pub fn recorded(&self) -> u64 {
        self.pushed.load(Relaxed)
    }

    /// Events lost to ring overflow — the explicit dropped-events counter.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("span ring lock").ring.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the retained window out, oldest first.
    pub fn dump(&self) -> Vec<SpanEvent> {
        self.inner
            .lock()
            .expect("span ring lock")
            .ring
            .iter()
            .copied()
            .collect()
    }

    /// Empties the ring (drop accounting is preserved).
    pub fn clear(&self) {
        self.inner.lock().expect("span ring lock").ring.clear();
    }

    /// The retained window as JSON Lines (one event object per line).
    pub fn to_jsonl(&self) -> String {
        spans_to_jsonl(&self.dump())
    }

    /// The retained window in Chrome `trace_event` format (Perfetto-ready).
    pub fn to_chrome_trace(&self) -> String {
        spans_to_chrome_trace(&self.dump())
    }

    /// Per-path post→match latency histograms derived from the retained
    /// spans (see [`latency_by_path`]).
    pub fn latency_by_path(&self) -> [HistogramSnapshot; 4] {
        latency_by_path(&self.dump())
    }
}

/// Writes one event as a flat JSON object (shared by JSONL and the Chrome
/// `args` payload writer below keeps its own shape).
fn write_event_json(w: &mut JsonWriter, e: &SpanEvent) {
    w.begin_object();
    w.field_u64("t_ns", e.t_ns);
    w.field_u64("seq", e.seq);
    w.field_u64("subject", e.subject);
    w.field_str("event", e.kind.name());
    match e.kind {
        SpanKind::Packed {
            block_id,
            occupancy,
        } => {
            w.field_u64("block_id", block_id);
            w.field_u64("occupancy", occupancy as u64);
        }
        SpanKind::Matched { path } => w.field_str("path", path.label()),
        SpanKind::Retransmitted { attempt } => w.field_u64("attempt", attempt as u64),
        SpanKind::KnobChanged { knob, from, to } => {
            w.field_str("knob", knob.label());
            w.field_u64("from", from);
            w.field_u64("to", to);
        }
        SpanKind::Posted | SpanKind::Enqueued | SpanKind::FellBack => {}
    }
    w.end_object();
}

/// Renders events (oldest first) as JSON Lines.
pub fn spans_to_jsonl(events: &[SpanEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let mut w = JsonWriter::new();
        write_event_json(&mut w, e);
        out.push_str(&w.finish());
        out.push('\n');
    }
    out
}

/// Renders events in the Chrome `trace_event` JSON format.
///
/// Each event becomes a thread-scoped instant (`"ph": "i"`) on the track of
/// its subject, with the structured payload under `args` — load the file in
/// Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing` as-is.
/// Timestamps are microseconds per the format, with sub-microsecond
/// precision kept as fractions.
pub fn spans_to_chrome_trace(events: &[SpanEvent]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("displayTimeUnit", "ns");
    w.key("traceEvents");
    w.begin_array();
    for e in events {
        w.begin_object();
        w.field_str("name", e.kind.name());
        w.field_str("ph", "i");
        w.field_str("s", "t");
        w.field_f64("ts", e.t_ns as f64 / 1000.0);
        w.field_u64("pid", 0);
        w.field_u64("tid", e.subject);
        w.key("args");
        w.begin_object();
        w.field_u64("seq", e.seq);
        match e.kind {
            SpanKind::Packed {
                block_id,
                occupancy,
            } => {
                w.field_u64("block_id", block_id);
                w.field_u64("occupancy", occupancy as u64);
            }
            SpanKind::Matched { path } => w.field_str("path", path.label()),
            SpanKind::Retransmitted { attempt } => w.field_u64("attempt", attempt as u64),
            SpanKind::KnobChanged { knob, from, to } => {
                w.field_str("knob", knob.label());
                w.field_u64("from", from);
                w.field_u64("to", to);
            }
            SpanKind::Posted | SpanKind::Enqueued | SpanKind::FellBack => {}
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Derives per-path post→match latency histograms from a span dump.
///
/// For every subject whose events include a `Matched{path}`, the latency is
/// the nanoseconds from the subject's *earliest* retained event (its
/// `posted`/`enqueued` stamp, or `packed` if the earlier ones were dropped
/// by ring overflow) to the match. Indexed by [`MatchPath::index`].
pub fn latency_by_path(events: &[SpanEvent]) -> [HistogramSnapshot; 4] {
    use std::collections::BTreeMap;
    let mut first_seen: BTreeMap<u64, u64> = BTreeMap::new();
    let hists = [
        Histogram::new(),
        Histogram::new(),
        Histogram::new(),
        Histogram::new(),
    ];
    for e in events {
        if let SpanKind::Matched { path } = e.kind {
            if let Some(&start) = first_seen.get(&e.subject) {
                hists[path.index()].record(e.t_ns.saturating_sub(start));
            }
            first_seen.remove(&e.subject);
        } else {
            first_seen.entry(e.subject).or_insert(e.t_ns);
        }
    }
    [
        hists[0].snapshot(),
        hists[1].snapshot(),
        hists[2].snapshot(),
        hists[3].snapshot(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_is_counted_not_silent() {
        let r = SpanRecorder::new(2);
        assert!(!r.push_at(1, 10, SpanKind::Posted));
        assert!(!r.push_at(2, 11, SpanKind::Posted));
        assert!(r.push_at(3, 12, SpanKind::Posted), "third push overwrites");
        assert_eq!(r.recorded(), 3);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.len(), 2);
        let dump = r.dump();
        assert_eq!(dump[0].subject, 11, "oldest retained is the second push");
        assert_eq!(dump[0].seq, 1, "seq survives the overwrite");
        assert_eq!(dump[1].subject, 12);
    }

    #[test]
    fn jsonl_flattens_kind_payloads() {
        let r = SpanRecorder::new(8);
        r.push_at(5, 1, SpanKind::Enqueued);
        r.push_at(
            7,
            1,
            SpanKind::Packed {
                block_id: 3,
                occupancy: 12,
            },
        );
        r.push_at(
            9,
            1,
            SpanKind::Matched {
                path: MatchPath::WcFp,
            },
        );
        r.push_at(11, 40, SpanKind::Retransmitted { attempt: 2 });
        let jsonl = r.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0],
            r#"{"t_ns":5,"seq":0,"subject":1,"event":"enqueued"}"#
        );
        assert_eq!(
            lines[1],
            r#"{"t_ns":7,"seq":1,"subject":1,"event":"packed","block_id":3,"occupancy":12}"#
        );
        assert_eq!(
            lines[2],
            r#"{"t_ns":9,"seq":2,"subject":1,"event":"matched","path":"wc_fp"}"#
        );
        assert_eq!(
            lines[3],
            r#"{"t_ns":11,"seq":3,"subject":40,"event":"retransmitted","attempt":2}"#
        );
    }

    #[test]
    fn chrome_trace_has_the_trace_event_envelope() {
        let r = SpanRecorder::new(8);
        r.push_at(1500, 7, SpanKind::Posted);
        r.push_at(
            2500,
            7,
            SpanKind::Matched {
                path: MatchPath::Nc,
            },
        );
        let trace = r.to_chrome_trace();
        assert!(trace.starts_with(r#"{"displayTimeUnit":"ns","traceEvents":["#));
        assert!(trace.contains(r#""name":"posted""#));
        assert!(trace.contains(r#""ph":"i""#));
        assert!(trace.contains(r#""ts":1.5"#), "ns are converted to µs");
        assert!(trace.contains(r#""tid":7"#));
        assert!(trace.contains(r#""path":"nc""#));
        assert!(trace.ends_with("]}"));
    }

    #[test]
    fn latency_pairs_first_event_with_match_per_path() {
        let r = SpanRecorder::new(16);
        // Subject 1: enqueued → packed → matched (NC): latency 30-10 = 20.
        r.push_at(10, 1, SpanKind::Enqueued);
        r.push_at(
            20,
            1,
            SpanKind::Packed {
                block_id: 0,
                occupancy: 2,
            },
        );
        r.push_at(
            30,
            1,
            SpanKind::Matched {
                path: MatchPath::Nc,
            },
        );
        // Subject 2: slow path, latency 100.
        r.push_at(50, 2, SpanKind::Enqueued);
        r.push_at(
            150,
            2,
            SpanKind::Matched {
                path: MatchPath::WcSp,
            },
        );
        // Subject 3: never matched — contributes nothing.
        r.push_at(60, 3, SpanKind::Enqueued);
        let h = r.latency_by_path();
        assert_eq!(h[MatchPath::Nc.index()].count, 1);
        assert_eq!(h[MatchPath::Nc.index()].sum, 20);
        assert_eq!(h[MatchPath::WcSp.index()].count, 1);
        assert_eq!(h[MatchPath::WcSp.index()].sum, 100);
        assert_eq!(h[MatchPath::WcFp.index()].count, 0);
        assert_eq!(h[MatchPath::Post.index()].count, 0);
    }

    #[test]
    fn matched_without_prior_events_is_not_a_latency_sample() {
        // Ring overflow can drop a subject's early events; a bare `matched`
        // must not produce a bogus zero-latency sample.
        let r = SpanRecorder::new(4);
        r.push_at(
            9,
            1,
            SpanKind::Matched {
                path: MatchPath::Nc,
            },
        );
        assert_eq!(r.latency_by_path()[MatchPath::Nc.index()].count, 0);
    }

    #[test]
    fn subjects_can_match_twice() {
        // Handles are reused across phases in long runs: a second lifecycle
        // for the same subject id starts a fresh pairing.
        let r = SpanRecorder::new(16);
        r.push_at(10, 1, SpanKind::Enqueued);
        r.push_at(
            15,
            1,
            SpanKind::Matched {
                path: MatchPath::Nc,
            },
        );
        r.push_at(40, 1, SpanKind::Enqueued);
        r.push_at(
            70,
            1,
            SpanKind::Matched {
                path: MatchPath::Nc,
            },
        );
        let h = r.latency_by_path();
        assert_eq!(h[MatchPath::Nc.index()].count, 2);
        assert_eq!(h[MatchPath::Nc.index()].sum, 5 + 30);
    }

    #[test]
    fn clear_keeps_drop_accounting() {
        let r = SpanRecorder::new(1);
        r.push_at(1, 0, SpanKind::Posted);
        r.push_at(2, 0, SpanKind::Posted);
        assert_eq!(r.dropped(), 1);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1, "history of loss survives a clear");
        assert_eq!(r.recorded(), 2);
    }
}
