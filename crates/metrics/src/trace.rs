//! Bounded ring-buffer event tracer.
//!
//! Instrumented components push [`TraceEvent`]s (a few words each) into a
//! [`TraceRing`]; when the ring is full the oldest events are overwritten,
//! so the ring always holds the most recent window. Events carry a global
//! sequence number so a dump can be ordered and gaps (overwritten events)
//! detected. Intended for opt-in timeline debugging, not the hot path —
//! pushes take a short critical section on a plain mutex.

use crate::json::JsonWriter;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An OTM block began matching.
    BlockStart,
    /// An OTM block finished (all lanes resolved).
    BlockEnd,
    /// A worker detected a booking conflict during optimistic matching.
    ConflictDetected,
    /// A conflict was repaired on the fast path (bounded shift).
    FastPathShift,
    /// A conflict fell back to serialized slow-path resolution.
    SlowPathSerialize,
    /// The NIC bounce-buffer pool could not stage a packet (spill).
    BounceSpill,
    /// Periodic progress marker (e.g. trace replay batches).
    Progress,
}

impl EventKind {
    /// Stable lowercase name used in dumps.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::BlockStart => "block_start",
            EventKind::BlockEnd => "block_end",
            EventKind::ConflictDetected => "conflict_detected",
            EventKind::FastPathShift => "fast_path_shift",
            EventKind::SlowPathSerialize => "slow_path_serialize",
            EventKind::BounceSpill => "bounce_spill",
            EventKind::Progress => "progress",
        }
    }
}

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the process metrics epoch ([`crate::now_ns`]).
    pub ts_ns: u64,
    /// Worker/lane id (0 for single-threaded contexts).
    pub worker: u32,
    /// Event kind.
    pub kind: EventKind,
    /// Global sequence number (monotonic per ring).
    pub seq: u64,
}

#[derive(Debug)]
struct RingInner {
    buf: Vec<TraceEvent>,
    /// Next write position.
    next: usize,
    /// Whether the ring has wrapped at least once.
    wrapped: bool,
}

/// A fixed-capacity ring of [`TraceEvent`]s.
#[derive(Debug)]
pub struct TraceRing {
    inner: Mutex<RingInner>,
    seq: AtomicU64,
    capacity: usize,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(RingInner {
                buf: Vec::with_capacity(capacity),
                next: 0,
                wrapped: false,
            }),
            seq: AtomicU64::new(0),
            capacity,
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records an event with the current timestamp. Returns `true` when an
    /// older event was overwritten to make room, so callers can account for
    /// the loss (e.g. in an `*_trace_dropped_total` counter) instead of
    /// dropping silently.
    pub fn push(&self, worker: u32, kind: EventKind) -> bool {
        self.push_at(crate::now_ns(), worker, kind)
    }

    /// Records an event with an explicit timestamp (useful in tests and
    /// simulated-time contexts). Returns `true` when an older event was
    /// overwritten to make room.
    pub fn push_at(&self, ts_ns: u64, worker: u32, kind: EventKind) -> bool {
        let seq = self.seq.fetch_add(1, Relaxed);
        let ev = TraceEvent {
            ts_ns,
            worker,
            kind,
            seq,
        };
        let mut inner = self.inner.lock().expect("trace ring lock");
        let overwrote = inner.buf.len() >= self.capacity;
        if !overwrote {
            inner.buf.push(ev);
        } else {
            let at = inner.next;
            inner.buf[at] = ev;
            inner.wrapped = true;
        }
        inner.next = (inner.next + 1) % self.capacity;
        overwrote
    }

    /// Total number of events ever pushed (including overwritten ones).
    pub fn pushed(&self) -> u64 {
        self.seq.load(Relaxed)
    }

    /// Copies out the retained events, oldest first.
    pub fn dump(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock().expect("trace ring lock");
        let mut out = Vec::with_capacity(inner.buf.len());
        if inner.wrapped {
            out.extend_from_slice(&inner.buf[inner.next..]);
            out.extend_from_slice(&inner.buf[..inner.next]);
        } else {
            out.extend_from_slice(&inner.buf);
        }
        out
    }

    /// Discards all retained events (sequence numbers keep increasing).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("trace ring lock");
        inner.buf.clear();
        inner.next = 0;
        inner.wrapped = false;
    }

    /// Renders the retained events as a JSON array of
    /// `{"ts_ns":..,"worker":..,"kind":"..","seq":..}` objects, oldest
    /// first.
    pub fn to_json(&self) -> String {
        let events = self.dump();
        let mut w = JsonWriter::new();
        w.begin_array();
        for ev in &events {
            w.begin_object();
            w.field_u64("ts_ns", ev.ts_ns);
            w.field_u64("worker", ev.worker as u64);
            w.field_str("kind", ev.kind.name());
            w.field_u64("seq", ev.seq);
            w.end_object();
        }
        w.end_array();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_in_order_before_wrap() {
        let ring = TraceRing::new(8);
        ring.push_at(10, 0, EventKind::BlockStart);
        ring.push_at(20, 1, EventKind::ConflictDetected);
        ring.push_at(30, 0, EventKind::BlockEnd);
        let evs = ring.dump();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].kind, EventKind::BlockStart);
        assert_eq!(evs[2].kind, EventKind::BlockEnd);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[2].seq, 2);
        assert_eq!(ring.pushed(), 3);
    }

    #[test]
    fn wraps_keeping_most_recent() {
        let ring = TraceRing::new(4);
        for i in 0..10u64 {
            ring.push_at(i, 0, EventKind::Progress);
        }
        let evs = ring.dump();
        assert_eq!(evs.len(), 4);
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(ring.pushed(), 10);
    }

    #[test]
    fn clear_keeps_sequence_monotonic() {
        let ring = TraceRing::new(4);
        ring.push_at(1, 0, EventKind::BlockStart);
        ring.clear();
        assert!(ring.dump().is_empty());
        ring.push_at(2, 0, EventKind::BlockEnd);
        assert_eq!(ring.dump()[0].seq, 1);
    }

    #[test]
    fn concurrent_push_loses_nothing_before_wrap() {
        use std::sync::Arc;
        let ring = Arc::new(TraceRing::new(10_000));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        ring.push(t, EventKind::FastPathShift);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let evs = ring.dump();
        assert_eq!(evs.len(), 4000);
        // All sequence numbers distinct.
        let mut seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 4000);
    }

    #[test]
    fn json_dump_shape() {
        let ring = TraceRing::new(4);
        ring.push_at(5, 2, EventKind::SlowPathSerialize);
        let json = ring.to_json();
        assert_eq!(
            json,
            r#"[{"ts_ns":5,"worker":2,"kind":"slow_path_serialize","seq":0}]"#
        );
        let empty = TraceRing::new(4);
        assert_eq!(empty.to_json(), "[]");
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let ring = TraceRing::new(0);
        ring.push_at(1, 0, EventKind::BounceSpill);
        ring.push_at(2, 0, EventKind::BounceSpill);
        let evs = ring.dump();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].seq, 1);
    }

    #[test]
    fn push_reports_overwrites() {
        let ring = TraceRing::new(2);
        assert!(!ring.push_at(1, 0, EventKind::Progress));
        assert!(!ring.push_at(2, 0, EventKind::Progress));
        assert!(ring.push_at(3, 0, EventKind::Progress));
        assert!(ring.push_at(4, 0, EventKind::Progress));
        ring.clear();
        assert!(
            !ring.push_at(5, 0, EventKind::Progress),
            "a cleared ring has room again"
        );
    }
}
