//! The MPI trace analyzer — contribution **C2** of the paper (§V).
//!
//! The analyzer runs existing MPI traces through an emulation of the
//! optimistic tag matching data structures and gathers matching-behaviour
//! statistics: queue depths at different bin counts (Fig. 7), the
//! distribution of MPI call types (Fig. 6), tag usage, collision counts and
//! empty-bin fractions.
//!
//! Pipeline (mirroring §V-A):
//!
//! 1. **Parsing** ([`dumpi`]) — DUMPI-style text traces (one file per rank)
//!    are parsed, in parallel across ranks, into the in-memory operation
//!    model of [`model`]. A binary cache ([`cache`]) skips re-parsing on
//!    subsequent runs, since parsing is the analyzer's most expensive step.
//! 2. **Processing** ([`mod@replay`]) — the per-rank operation streams are
//!    merged by timestamp and driven through a per-rank matcher emulation
//!    ([`emul::FourIndexMatcher`], the three binned hash tables plus
//!    wildcard list of §III-B). Only point-to-point and progress operations
//!    are matched; collectives and one-sided operations are counted for the
//!    call-distribution statistics and otherwise ignored.
//! 3. **Reporting** ([`report`]) — per-application statistics are formatted
//!    as the rows behind Figs. 6 and 7 and dumped as JSON for downstream
//!    plotting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dumpi;
pub mod emul;
pub mod model;
pub mod obs;
pub mod replay;
pub mod report;

pub use model::{AppTrace, CallKind, MpiOp, RankTrace, TimedOp};
pub use obs::{replay_metrics, ReplayMetrics};
pub use replay::{replay, AppReport, ReplayConfig};
