//! Sequential emulation of the Optimistic Tag Matching data-structure
//! organization (§III-B), used by the trace analyzer.
//!
//! The analyzer does not need the parallel conflict machinery — traces are
//! replayed sequentially — but it must measure the *data structure*
//! behaviour of the optimistic approach: three binned hash tables (keyed on
//! `(src, tag)`, `tag`, `src`) plus an ordered list for double-wildcard
//! receives, with post labels arbitrating C1 across structures, and an
//! unexpected store indexed in all four ways (§IV-C). Search depths
//! recorded here are the queue depths of Fig. 7; with one bin the matcher
//! degenerates into traditional linear-scan matching.
//!
//! This growable, allocation-friendly implementation exists separately from
//! `otm`'s fixed-table engine so that thousand-rank replays stay cheap.

use mpi_matching::{ArriveResult, MatchStats, Matcher, MsgHandle, PostResult, RecvHandle};
use otm_base::envelope::{SourceSel, TagSel};
use otm_base::hash::{bin_of, hash_src, hash_src_tag, hash_tag};
use otm_base::{Envelope, MatchError, PostLabel, ReceivePattern, WildcardClass};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
struct PostedRecv {
    pattern: ReceivePattern,
    label: PostLabel,
    handle: RecvHandle,
}

/// Reference to a UMQ slab slot, generation-stamped: a message is indexed
/// in all four views (§IV-C), so when one view consumes it the other three
/// hold stale references. Bumping the generation at consumption prevents a
/// recycled slot from resurrecting under an old reference (which would
/// surface the new message at the old message's queue position and violate
/// C2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EntryRef {
    slot: u32,
    gen: u32,
}

#[derive(Debug, Clone, Copy)]
struct UnexpectedMsg {
    env: Envelope,
    handle: MsgHandle,
    gen: u32,
    alive: bool,
}

/// Sequential four-index matcher (see module docs).
///
/// ```
/// use otm_trace::emul::FourIndexMatcher;
/// use mpi_matching::{ArriveResult, Matcher, MsgHandle, RecvHandle};
/// use otm_base::{Envelope, Rank, ReceivePattern, Tag};
///
/// let mut m = FourIndexMatcher::new(128);
/// m.post(ReceivePattern::any_source(Tag(3)), RecvHandle(0)).unwrap();
/// let r = m.arrive(Envelope::world(Rank(9), Tag(3)), MsgHandle(0)).unwrap();
/// assert_eq!(r, ArriveResult::Matched(RecvHandle(0)));
/// ```
#[derive(Debug, Clone)]
pub struct FourIndexMatcher {
    bins: usize,
    /// PRQ: one binned table per keyed class, plus the both-wildcard list.
    prq_no_wild: Vec<VecDeque<PostedRecv>>,
    prq_src_wild: Vec<VecDeque<PostedRecv>>,
    prq_tag_wild: Vec<VecDeque<PostedRecv>>,
    prq_both_wild: VecDeque<PostedRecv>,
    next_label: PostLabel,
    prq_live: usize,
    /// UMQ: slab plus four reference views (three binned, one ordered).
    umq_slab: Vec<UnexpectedMsg>,
    umq_free: Vec<u32>,
    umq_by_src_tag: Vec<VecDeque<EntryRef>>,
    umq_by_tag: Vec<VecDeque<EntryRef>>,
    umq_by_src: Vec<VecDeque<EntryRef>>,
    umq_order: VecDeque<EntryRef>,
    umq_live: usize,
    /// Stale references left in the unsearched views when a message is
    /// consumed (a message is indexed in all four views, §IV-C). Triggers a
    /// full purge before they can grow unboundedly in replays that never
    /// search some views (e.g. wildcard-free traces never scan by_tag).
    stale_refs: usize,
    stats: MatchStats,
}

impl FourIndexMatcher {
    /// Creates a matcher with `bins` bins per hash table.
    ///
    /// # Panics
    /// Panics if `bins == 0`.
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        FourIndexMatcher {
            bins,
            prq_no_wild: vec![VecDeque::new(); bins],
            prq_src_wild: vec![VecDeque::new(); bins],
            prq_tag_wild: vec![VecDeque::new(); bins],
            prq_both_wild: VecDeque::new(),
            next_label: PostLabel::ZERO,
            prq_live: 0,
            umq_slab: Vec::new(),
            umq_free: Vec::new(),
            umq_by_src_tag: vec![VecDeque::new(); bins],
            umq_by_tag: vec![VecDeque::new(); bins],
            umq_by_src: vec![VecDeque::new(); bins],
            umq_order: VecDeque::new(),
            umq_live: 0,
            stale_refs: 0,
            stats: MatchStats::new(),
        }
    }

    /// Number of bins per hash table.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Fraction of no-wildcard PRQ bins currently empty (a §V statistic).
    pub fn prq_empty_bin_fraction(&self) -> f64 {
        let empty = self.prq_no_wild.iter().filter(|b| b.is_empty()).count();
        empty as f64 / self.bins as f64
    }

    fn scan_umq(
        slab: &mut [UnexpectedMsg],
        refs: &mut VecDeque<EntryRef>,
        pattern: &ReceivePattern,
        stale_refs: &mut usize,
    ) -> (Option<(u32, MsgHandle)>, usize) {
        let mut depth = 0usize;
        let mut i = 0usize;
        while i < refs.len() {
            let r = refs[i];
            let entry = &mut slab[r.slot as usize];
            if entry.gen != r.gen || !entry.alive {
                refs.remove(i);
                *stale_refs = stale_refs.saturating_sub(1);
                continue;
            }
            depth += 1;
            if pattern.matches(&entry.env) {
                entry.alive = false;
                entry.gen = entry.gen.wrapping_add(1);
                let handle = entry.handle;
                refs.remove(i);
                return (Some((r.slot, handle)), depth);
            }
            i += 1;
        }
        (None, depth)
    }

    /// Drops every stale reference from every view. Amortized by the
    /// trigger in the match path.
    fn purge_stale_refs(&mut self) {
        let slab = &self.umq_slab;
        let live = |r: &EntryRef| {
            let e = &slab[r.slot as usize];
            e.gen == r.gen && e.alive
        };
        for group in [
            &mut self.umq_by_src_tag,
            &mut self.umq_by_tag,
            &mut self.umq_by_src,
        ] {
            for refs in group.iter_mut() {
                refs.retain(&live);
            }
        }
        self.umq_order.retain(&live);
        self.stale_refs = 0;
    }
}

impl Matcher for FourIndexMatcher {
    fn post(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<PostResult, MatchError> {
        // Only the index matching the receive's class is searched (§IV-C).
        let (hit, depth) = match pattern.wildcard_class() {
            WildcardClass::None => {
                let (SourceSel::Rank(src), TagSel::Tag(tag)) = (pattern.src, pattern.tag) else {
                    unreachable!()
                };
                let b = bin_of(hash_src_tag(src, tag, pattern.comm), self.bins);
                Self::scan_umq(
                    &mut self.umq_slab,
                    &mut self.umq_by_src_tag[b],
                    &pattern,
                    &mut self.stale_refs,
                )
            }
            WildcardClass::SrcWild => {
                let TagSel::Tag(tag) = pattern.tag else {
                    unreachable!()
                };
                let b = bin_of(hash_tag(tag, pattern.comm), self.bins);
                Self::scan_umq(
                    &mut self.umq_slab,
                    &mut self.umq_by_tag[b],
                    &pattern,
                    &mut self.stale_refs,
                )
            }
            WildcardClass::TagWild => {
                let SourceSel::Rank(src) = pattern.src else {
                    unreachable!()
                };
                let b = bin_of(hash_src(src, pattern.comm), self.bins);
                Self::scan_umq(
                    &mut self.umq_slab,
                    &mut self.umq_by_src[b],
                    &pattern,
                    &mut self.stale_refs,
                )
            }
            WildcardClass::BothWild => Self::scan_umq(
                &mut self.umq_slab,
                &mut self.umq_order,
                &pattern,
                &mut self.stale_refs,
            ),
        };
        let result = match hit {
            Some((idx, msg)) => {
                self.umq_free.push(idx);
                self.umq_live -= 1;
                // The three unsearched views still reference the dead slot.
                self.stale_refs += 3;
                if self.stale_refs > 4 * self.umq_live.max(64) {
                    self.purge_stale_refs();
                }
                self.stats.record_post(depth, true);
                PostResult::Matched(msg)
            }
            None => {
                let entry = PostedRecv {
                    pattern,
                    label: self.next_label,
                    handle,
                };
                self.next_label = self.next_label.next();
                match pattern.wildcard_class() {
                    WildcardClass::None => {
                        let (SourceSel::Rank(src), TagSel::Tag(tag)) = (pattern.src, pattern.tag)
                        else {
                            unreachable!()
                        };
                        let b = bin_of(hash_src_tag(src, tag, pattern.comm), self.bins);
                        self.prq_no_wild[b].push_back(entry);
                    }
                    WildcardClass::SrcWild => {
                        let TagSel::Tag(tag) = pattern.tag else {
                            unreachable!()
                        };
                        let b = bin_of(hash_tag(tag, pattern.comm), self.bins);
                        self.prq_src_wild[b].push_back(entry);
                    }
                    WildcardClass::TagWild => {
                        let SourceSel::Rank(src) = pattern.src else {
                            unreachable!()
                        };
                        let b = bin_of(hash_src(src, pattern.comm), self.bins);
                        self.prq_tag_wild[b].push_back(entry);
                    }
                    WildcardClass::BothWild => self.prq_both_wild.push_back(entry),
                }
                self.prq_live += 1;
                self.stats.record_post(depth, false);
                PostResult::Posted
            }
        };
        self.stats.observe_queue_lens(self.prq_live, self.umq_live);
        Ok(result)
    }

    fn arrive(&mut self, env: Envelope, handle: MsgHandle) -> Result<ArriveResult, MatchError> {
        // All four indexes are probed with the appropriate keys; the oldest
        // candidate (minimum post label) wins (§III-C).
        let b_st = bin_of(hash_src_tag(env.src, env.tag, env.comm), self.bins);
        let b_t = bin_of(hash_tag(env.tag, env.comm), self.bins);
        let b_s = bin_of(hash_src(env.src, env.comm), self.bins);
        let mut depth = 0usize;
        let mut best: Option<(usize, usize, PostLabel)> = None; // (class, pos, label)
        {
            let chains: [(usize, &VecDeque<PostedRecv>); 4] = [
                (0, &self.prq_no_wild[b_st]),
                (1, &self.prq_src_wild[b_t]),
                (2, &self.prq_tag_wild[b_s]),
                (3, &self.prq_both_wild),
            ];
            for (class, chain) in chains {
                for (i, r) in chain.iter().enumerate() {
                    depth += 1;
                    if r.pattern.matches(&env) {
                        if best.map_or(true, |(_, _, l)| r.label < l) {
                            best = Some((class, i, r.label));
                        }
                        break;
                    }
                }
            }
        }
        let result = match best {
            Some((class, i, _)) => {
                let recv = match class {
                    0 => self.prq_no_wild[b_st].remove(i),
                    1 => self.prq_src_wild[b_t].remove(i),
                    2 => self.prq_tag_wild[b_s].remove(i),
                    _ => self.prq_both_wild.remove(i),
                }
                .expect("candidate position valid");
                self.prq_live -= 1;
                self.stats.record_arrival(depth, true);
                ArriveResult::Matched(recv.handle)
            }
            None => {
                let idx = if let Some(idx) = self.umq_free.pop() {
                    let gen = self.umq_slab[idx as usize].gen;
                    self.umq_slab[idx as usize] = UnexpectedMsg {
                        env,
                        handle,
                        gen,
                        alive: true,
                    };
                    idx
                } else {
                    let idx = self.umq_slab.len() as u32;
                    self.umq_slab.push(UnexpectedMsg {
                        env,
                        handle,
                        gen: 0,
                        alive: true,
                    });
                    idx
                };
                let r = EntryRef {
                    slot: idx,
                    gen: self.umq_slab[idx as usize].gen,
                };
                self.umq_by_src_tag[b_st].push_back(r);
                self.umq_by_tag[b_t].push_back(r);
                self.umq_by_src[b_s].push_back(r);
                self.umq_order.push_back(r);
                self.umq_live += 1;
                self.stats.record_arrival(depth, false);
                ArriveResult::Unexpected
            }
        };
        self.stats.observe_queue_lens(self.prq_live, self.umq_live);
        Ok(result)
    }

    fn prq_len(&self) -> usize {
        self.prq_live
    }

    fn umq_len(&self) -> usize {
        self.umq_live
    }

    fn probe(&self, pattern: &ReceivePattern) -> Option<MsgHandle> {
        self.umq_order.iter().find_map(|r| {
            let e = &self.umq_slab[r.slot as usize];
            (e.gen == r.gen && e.alive && pattern.matches(&e.env)).then_some(e.handle)
        })
    }

    fn stats(&self) -> &MatchStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MatchStats::new();
    }

    fn strategy_name(&self) -> &'static str {
        "optimistic-indexes"
    }
}

impl mpi_matching::MatchingBackend for FourIndexMatcher {
    fn backend_name(&self) -> &'static str {
        "FourIndex-CPU"
    }

    fn post(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<PostResult, MatchError> {
        Matcher::post(self, pattern, handle)
    }

    fn arrive_block(
        &mut self,
        msgs: &[(Envelope, MsgHandle)],
    ) -> Result<Vec<mpi_matching::BlockDelivery>, MatchError> {
        msgs.iter()
            .map(|&(env, msg)| {
                Ok(match Matcher::arrive(self, env, msg)? {
                    ArriveResult::Matched(recv) => {
                        mpi_matching::BlockDelivery::Matched { msg, recv }
                    }
                    ArriveResult::Unexpected => mpi_matching::BlockDelivery::Unexpected { msg },
                })
            })
            .collect()
    }

    fn probe(&self, pattern: &ReceivePattern) -> Option<MsgHandle> {
        Matcher::probe(self, pattern)
    }

    fn prq_len(&self) -> usize {
        Matcher::prq_len(self)
    }

    fn umq_len(&self) -> usize {
        Matcher::umq_len(self)
    }

    fn merge_stats(&self, into: &mut MatchStats) {
        into.merge(Matcher::stats(self));
    }

    fn drain_for_fallback(self: Box<Self>) -> Result<mpi_matching::FallbackState, MatchError> {
        // Re-serialize the four PRQ structures into global post order by
        // label; the UMQ order list is already in arrival order (skip the
        // stale refs left by consumed messages).
        let mut posted: Vec<PostedRecv> = self
            .prq_no_wild
            .iter()
            .flatten()
            .chain(self.prq_src_wild.iter().flatten())
            .chain(self.prq_tag_wild.iter().flatten())
            .chain(self.prq_both_wild.iter())
            .copied()
            .collect();
        posted.sort_by_key(|r| r.label);
        let receives = posted.into_iter().map(|r| (r.pattern, r.handle)).collect();
        let unexpected = self
            .umq_order
            .iter()
            .filter_map(|r| {
                let e = &self.umq_slab[r.slot as usize];
                (e.gen == r.gen && e.alive).then_some((e.env, e.handle))
            })
            .collect();
        Ok(mpi_matching::FallbackState::from_state(
            receives, unexpected,
        ))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_matching::oracle::{MatchEvent, Oracle};
    use otm_base::{Rank, Tag};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn post(src: u32, tag: u32) -> MatchEvent {
        MatchEvent::Post(ReceivePattern::exact(Rank(src), Tag(tag)))
    }

    fn arrive(src: u32, tag: u32) -> MatchEvent {
        MatchEvent::Arrive(Envelope::world(Rank(src), Tag(tag)))
    }

    #[test]
    fn agrees_with_oracle_across_bin_counts() {
        let mut rng = SmallRng::seed_from_u64(11);
        for bins in [1usize, 2, 32, 128] {
            let events: Vec<MatchEvent> = (0..500)
                .map(|_| {
                    let src = rng.gen_range(0..4);
                    let tag = rng.gen_range(0..4);
                    match rng.gen_range(0..8) {
                        0..=2 => arrive(src, tag),
                        3..=5 => post(src, tag),
                        6 => MatchEvent::Post(ReceivePattern::any_source(Tag(tag))),
                        _ => MatchEvent::Post(ReceivePattern::any_tag(Rank(src))),
                    }
                })
                .collect();
            let mut m = FourIndexMatcher::new(bins);
            assert_eq!(
                Oracle::drive(&mut m, &events).unwrap(),
                Oracle::run(&events),
                "bins={bins}"
            );
        }
    }

    #[test]
    fn one_bin_search_depth_matches_traditional() {
        use mpi_matching::traditional::TraditionalMatcher;
        // Fully-specified workload: with one bin, the four-index layout
        // degenerates into a single list, so the scan depths are the
        // traditional ones.
        let mut events = Vec::new();
        for t in 0..32u32 {
            events.push(post(0, t));
        }
        for t in (0..32u32).rev() {
            events.push(arrive(0, t));
        }
        let mut four = FourIndexMatcher::new(1);
        let mut trad = TraditionalMatcher::new();
        Oracle::drive(&mut four, &events).unwrap();
        Oracle::drive(&mut trad, &events).unwrap();
        assert_eq!(four.stats().prq_search.sum, trad.stats().prq_search.sum);
        assert_eq!(four.stats().prq_search.max, trad.stats().prq_search.max);
    }

    #[test]
    fn bins_shrink_search_depth() {
        let mut events = Vec::new();
        for t in 0..128u32 {
            events.push(post(t % 8, t));
        }
        for t in (0..128u32).rev() {
            events.push(arrive(t % 8, t));
        }
        let depth_of = |bins: usize| {
            let mut m = FourIndexMatcher::new(bins);
            Oracle::drive(&mut m, &events).unwrap();
            m.stats().prq_search.mean()
        };
        let d1 = depth_of(1);
        let d32 = depth_of(32);
        let d128 = depth_of(128);
        assert!(d32 < d1 / 4.0, "1 bin {d1}, 32 bins {d32}");
        assert!(d128 <= d32, "32 bins {d32}, 128 bins {d128}");
    }

    #[test]
    fn wildcard_class_receives_search_their_own_umq_view() {
        let mut m = FourIndexMatcher::new(8);
        m.arrive(Envelope::world(Rank(1), Tag(2)), MsgHandle(0))
            .unwrap();
        m.arrive(Envelope::world(Rank(3), Tag(2)), MsgHandle(1))
            .unwrap();
        // ANY_SOURCE on tag 2 must take the older message.
        let r = m
            .post(ReceivePattern::any_source(Tag(2)), RecvHandle(0))
            .unwrap();
        assert_eq!(r, PostResult::Matched(MsgHandle(0)));
        // The exact receive for the younger one must skip the dead ref.
        let r = m
            .post(ReceivePattern::exact(Rank(3), Tag(2)), RecvHandle(1))
            .unwrap();
        assert_eq!(r, PostResult::Matched(MsgHandle(1)));
        assert_eq!(m.umq_len(), 0);
    }

    #[test]
    fn empty_bin_fraction_decreases_with_occupancy() {
        let mut m = FourIndexMatcher::new(32);
        assert_eq!(m.prq_empty_bin_fraction(), 1.0);
        for t in 0..64u32 {
            m.post(
                ReceivePattern::exact(Rank(0), Tag(t)),
                RecvHandle(u64::from(t)),
            )
            .unwrap();
        }
        assert!(m.prq_empty_bin_fraction() < 0.5);
    }

    #[test]
    fn stale_refs_are_purged_even_when_views_are_never_searched() {
        // A wildcard-free workload never scans by_tag/by_src/order; without
        // the purge these views would grow by 3 refs per consumed message.
        let mut m = FourIndexMatcher::new(4);
        for i in 0..10_000u64 {
            m.arrive(Envelope::world(Rank(0), Tag((i % 7) as u32)), MsgHandle(i))
                .unwrap();
            m.post(
                ReceivePattern::exact(Rank(0), Tag((i % 7) as u32)),
                RecvHandle(i),
            )
            .unwrap();
        }
        assert_eq!(m.umq_len(), 0);
        let order_refs = m.umq_order.len();
        let tag_refs: usize = m.umq_by_tag.iter().map(|d| d.len()).sum();
        assert!(order_refs < 512, "order view holds {order_refs} refs");
        assert!(tag_refs < 512, "tag view holds {tag_refs} refs");
    }

    #[test]
    fn umq_slab_is_recycled() {
        let mut m = FourIndexMatcher::new(4);
        for round in 0..50u64 {
            for i in 0..6u64 {
                m.arrive(
                    Envelope::world(Rank(0), Tag(i as u32)),
                    MsgHandle(round * 6 + i),
                )
                .unwrap();
            }
            for i in 0..6u64 {
                let r = m
                    .post(
                        ReceivePattern::exact(Rank(0), Tag(i as u32)),
                        RecvHandle(round * 6 + i),
                    )
                    .unwrap();
                assert!(matches!(r, PostResult::Matched(_)));
            }
        }
        assert!(m.umq_slab.len() <= 12, "slab grew to {}", m.umq_slab.len());
    }
}
