//! Feature-gated replay progress observability.
//!
//! Long traces replay for minutes; these process-wide counters let a
//! harness (or an operator attaching mid-run) see how far the replay has
//! progressed — operations consumed, receive posts and message arrivals
//! driven into the matchers, progress points sampled — plus a histogram of
//! per-rank replayed-event counts from the engine-backed replay, which
//! shows how skewed the rank workloads are.
//!
//! The handle is process-wide (replays accumulate) so the public
//! [`crate::replay::replay`] / [`crate::replay::replay_engine`] signatures
//! stay unchanged; interval measurements use
//! `snapshot()`/`RegistrySnapshot::delta`. With `--no-default-features`
//! everything compiles to no-ops.

#[cfg(feature = "metrics")]
mod imp {
    use otm_metrics::{Counter, Histogram, Registry, RegistrySnapshot};
    use std::sync::{Arc, OnceLock};

    /// Process-wide replay progress instruments.
    #[derive(Debug)]
    pub struct ReplayMetrics {
        registry: Registry,
        ops: Arc<Counter>,
        posts: Arc<Counter>,
        arrivals: Arc<Counter>,
        progress_points: Arc<Counter>,
        rank_events: Arc<Histogram>,
    }

    impl ReplayMetrics {
        fn new() -> Self {
            let registry = Registry::new();
            Self {
                ops: registry.counter("trace_replay_ops_total"),
                posts: registry.counter("trace_replay_posts_total"),
                arrivals: registry.counter("trace_replay_arrivals_total"),
                progress_points: registry.counter("trace_replay_progress_points_total"),
                rank_events: registry.histogram("trace_replay_rank_events"),
                registry,
            }
        }

        /// Counts one replayed trace operation (any kind).
        #[inline]
        pub fn count_op(&self) {
            self.ops.inc();
        }

        /// Counts one receive post driven into a matcher.
        #[inline]
        pub fn count_post(&self) {
            self.posts.inc();
        }

        /// Counts one message arrival driven into a matcher.
        #[inline]
        pub fn count_arrive(&self) {
            self.arrivals.inc();
        }

        /// Counts one progress point (Wait/Waitall sample).
        #[inline]
        pub fn count_progress_point(&self) {
            self.progress_points.inc();
        }

        /// Records how many events one rank's engine replay processed.
        #[inline]
        pub fn record_rank_events(&self, n: u64) {
            self.rank_events.record(n);
        }

        /// The underlying registry (for embedding into a larger exporter).
        pub fn registry(&self) -> &Registry {
            &self.registry
        }

        /// Copies out the replay counters; diff two snapshots with
        /// `RegistrySnapshot::delta` to isolate one replay's activity.
        pub fn snapshot(&self) -> RegistrySnapshot {
            self.registry.snapshot()
        }

        /// The snapshot rendered as JSON — callers that only forward the
        /// data can use this without feature gating of their own.
        pub fn snapshot_json(&self) -> Option<String> {
            Some(self.registry.snapshot().to_json())
        }
    }

    /// The process-wide replay metrics handle (created on first use).
    pub fn replay_metrics() -> &'static ReplayMetrics {
        static METRICS: OnceLock<ReplayMetrics> = OnceLock::new();
        METRICS.get_or_init(ReplayMetrics::new)
    }

    /// Flight-recorder glue for trace replays: a [`otm_metrics::SeriesRecorder`]
    /// driven by the replay's own virtual clock — the operation index — so a
    /// given trace produces an identical series on every run.
    ///
    /// Because [`replay_metrics`] is process-wide, the sampler snapshots a
    /// *delta* against the registry state captured at construction: the
    /// series starts at zero even if earlier replays (or other threads'
    /// tests) already ran.
    #[derive(Debug)]
    pub struct ReplaySampler {
        series: otm_metrics::SeriesRecorder,
        base: RegistrySnapshot,
        ops: u64,
    }

    impl ReplaySampler {
        /// A sampler snapshotting every `cadence` replayed operations.
        pub fn new(cadence: u64) -> Self {
            ReplaySampler {
                series: otm_metrics::SeriesRecorder::new(cadence),
                base: replay_metrics().snapshot(),
                ops: 0,
            }
        }

        /// Advances the op-index clock by one operation and samples the
        /// replay registry if a point is due. `queue_depth` is the replay
        /// harness's current pending-work depth (e.g. PRQ + UMQ length).
        pub fn tick(&mut self, queue_depth: u64) {
            self.ops += 1;
            if self.series.due(self.ops) {
                let snap = replay_metrics().snapshot().delta(&self.base);
                self.series.sample(self.ops, queue_depth, &snap);
            }
        }

        /// Operations ticked so far (the sampler's virtual time).
        pub fn ops(&self) -> u64 {
            self.ops
        }

        /// Forces the terminal sample and returns the finished series.
        pub fn finish(mut self, queue_depth: u64) -> otm_metrics::SeriesRecorder {
            let snap = replay_metrics().snapshot().delta(&self.base);
            self.series.force_sample(self.ops, queue_depth, &snap);
            self.series
        }
    }
}

#[cfg(not(feature = "metrics"))]
mod imp {
    /// No-op stand-in: all instrumentation compiles away.
    #[derive(Debug, Clone, Copy)]
    pub struct ReplayMetrics;

    impl ReplayMetrics {
        /// No-op.
        #[inline]
        pub fn count_op(&self) {}

        /// No-op.
        #[inline]
        pub fn count_post(&self) {}

        /// No-op.
        #[inline]
        pub fn count_arrive(&self) {}

        /// No-op.
        #[inline]
        pub fn count_progress_point(&self) {}

        /// No-op.
        #[inline]
        pub fn record_rank_events(&self, _n: u64) {}

        /// Always `None`: the `metrics` feature is disabled.
        pub fn snapshot_json(&self) -> Option<String> {
            None
        }
    }

    /// The no-op handle.
    pub fn replay_metrics() -> &'static ReplayMetrics {
        static METRICS: ReplayMetrics = ReplayMetrics;
        &METRICS
    }
}

#[cfg(feature = "metrics")]
pub use imp::ReplaySampler;
pub use imp::{replay_metrics, ReplayMetrics};

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "metrics"))]
    #[test]
    fn disabled_replay_metrics_are_zero_sized() {
        assert_eq!(std::mem::size_of::<ReplayMetrics>(), 0);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn replay_counters_accumulate_monotonically() {
        // The handle is process-wide and tests run in parallel, so assert
        // on the delta of this test's own contribution only.
        let m = replay_metrics();
        let before = m.snapshot();
        m.count_op();
        m.count_post();
        m.count_arrive();
        m.count_progress_point();
        m.record_rank_events(7);
        let d = m.snapshot().delta(&before);
        assert!(d.counters["trace_replay_ops_total"] >= 1);
        assert!(d.counters["trace_replay_posts_total"] >= 1);
        assert!(d.counters["trace_replay_arrivals_total"] >= 1);
        assert!(d.counters["trace_replay_progress_points_total"] >= 1);
        assert!(d.hists["trace_replay_rank_events"].count >= 1);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn replay_sampler_ticks_on_the_op_index_clock() {
        let m = replay_metrics();
        let mut sampler = ReplaySampler::new(3);
        for i in 0..7u64 {
            m.count_op();
            sampler.tick(i);
        }
        let series = sampler.finish(0);
        // First sample due immediately (op 1), then every 3 ops, then the
        // forced terminal point.
        let ts: Vec<u64> = series.points().iter().map(|p| p.t).collect();
        assert_eq!(ts, vec![1, 4, 7]);
        // The delta base pins the series to this replay's own activity even
        // though the underlying registry is process-wide: the replay
        // counters are not part of the engine-schema point, but the sample
        // machinery must still have run without panicking on absent keys.
        assert!(series.points().iter().all(|p| p.matched == 0));
    }
}
