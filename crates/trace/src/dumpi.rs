//! Reader and writer for DUMPI-style text traces.
//!
//! The paper's analyzer consumes text dumps of SST-DUMPI binary traces
//! (`dumpi2ascii`). This module implements the same line-oriented shape:
//! each call is bracketed by `MPI_Xxx entering at walltime T` /
//! `MPI_Xxx returning at walltime T` lines with typed `key=value` argument
//! lines in between, e.g.:
//!
//! ```text
//! MPI_Irecv entering at walltime 1.2500
//! int count=16
//! int source=-1
//! int tag=7
//! MPI_Comm comm=0
//! MPI_Request request=[3]
//! MPI_Irecv returning at walltime 1.2501
//! ```
//!
//! `source=-1` encodes `MPI_ANY_SOURCE` and `tag=-1` encodes `MPI_ANY_TAG`.
//! Unknown MPI functions are skipped (counted, not errors), so traces from
//! richer instrumentations still parse. Traces are one file per rank,
//! `dumpi-<rank>.txt`, parsed in parallel (§V-A: "the parsing is done in
//! parallel in a per-rank fashion").

use crate::model::{AppTrace, CollectiveKind, MpiOp, OneSidedKind, RankTrace, ReqId, TimedOp};
use otm_base::envelope::{SourceSel, TagSel};
use otm_base::{CommId, Rank, Tag};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

/// A parse failure, with the offending line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Outcome of parsing one rank file.
#[derive(Debug, Clone, PartialEq)]
pub struct RankParse {
    /// The parsed operations.
    pub ops: Vec<TimedOp>,
    /// Calls to MPI functions the analyzer does not model (skipped).
    pub skipped_calls: usize,
}

/// Parses one rank's text trace.
///
/// ```
/// let text = "\
/// MPI_Send entering at walltime 0.25
/// int count=4
/// int dest=1
/// int tag=7
/// MPI_Comm comm=0
/// MPI_Send returning at walltime 0.26
/// ";
/// let parsed = otm_trace::dumpi::parse_rank_text(text).unwrap();
/// assert_eq!(parsed.ops.len(), 1);
/// assert_eq!(parsed.ops[0].op.mpi_name(), "MPI_Send");
/// ```
pub fn parse_rank_text(text: &str) -> Result<RankParse, ParseError> {
    let mut ops = Vec::new();
    let mut skipped = 0usize;
    let mut lines = text.lines().enumerate().peekable();
    while let Some((lineno, line)) = lines.next() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, time)) = parse_entering(line) else {
            return err(
                lineno + 1,
                format!("expected 'MPI_Xxx entering at walltime T', got '{line}'"),
            );
        };
        // Collect argument lines until the matching "returning" line.
        let mut args: HashMap<String, String> = HashMap::new();
        let mut closed = false;
        for (argno, arg_line) in lines.by_ref() {
            let arg_line = arg_line.trim();
            if arg_line.starts_with(&format!("{name} returning")) {
                closed = true;
                break;
            }
            if arg_line.is_empty() {
                continue;
            }
            let Some((key, value)) = parse_arg(arg_line) else {
                return err(argno + 1, format!("malformed argument line '{arg_line}'"));
            };
            args.insert(key, value);
        }
        if !closed {
            return err(lineno + 1, format!("{name} never returned"));
        }
        match build_op(&name, time, &args) {
            Ok(Some(op)) => ops.push(op),
            Ok(None) => skipped += 1,
            Err(msg) => return err(lineno + 1, format!("{name}: {msg}")),
        }
    }
    Ok(RankParse {
        ops,
        skipped_calls: skipped,
    })
}

fn parse_entering(line: &str) -> Option<(String, f64)> {
    let rest = line.strip_prefix("MPI_")?;
    let (func, tail) = rest.split_once(' ')?;
    let time_str = tail.strip_prefix("entering at walltime ")?;
    let time: f64 = time_str.trim().parse().ok()?;
    Some((format!("MPI_{func}"), time))
}

fn parse_arg(line: &str) -> Option<(String, String)> {
    // "int count=16" / "MPI_Comm comm=0" / "MPI_Request request=[3]"
    let eq = line.find('=')?;
    let (lhs, rhs) = line.split_at(eq);
    let key = lhs.split_whitespace().last()?.to_string();
    let value = rhs[1..]
        .trim()
        .trim_start_matches('[')
        .trim_end_matches(']')
        .to_string();
    Some((key, value))
}

fn get_i64(args: &HashMap<String, String>, key: &str) -> Result<i64, String> {
    args.get(key)
        .ok_or_else(|| format!("missing argument '{key}'"))?
        .parse()
        .map_err(|_| format!("argument '{key}' is not an integer"))
}

/// Returns the numeric value of `key`, `default` when the argument is
/// absent, and an error when it is present but malformed — a corrupt
/// `count`/`comm`/`request` must surface as a parse error, not silently
/// become 0.
fn get_u64_or(args: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    match args.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("argument '{key}' is not an unsigned integer: '{v}'")),
    }
}

fn source_sel(v: i64) -> SourceSel {
    if v < 0 {
        SourceSel::Any
    } else {
        SourceSel::Rank(Rank(v as u32))
    }
}

fn tag_sel(v: i64) -> TagSel {
    if v < 0 {
        TagSel::Any
    } else {
        TagSel::Tag(Tag(v as u32))
    }
}

fn build_op(
    name: &str,
    time: f64,
    args: &HashMap<String, String>,
) -> Result<Option<TimedOp>, String> {
    let comm = CommId(get_u64_or(args, "comm", 0)? as u16);
    let count = get_u64_or(args, "count", 0)?;
    let op = match name {
        "MPI_Isend" | "MPI_Send" => {
            let dest = get_i64(args, "dest")?;
            let tag = get_i64(args, "tag")?;
            if dest < 0 || tag < 0 {
                return Err("sends cannot use wildcards".into());
            }
            let dest = Rank(dest as u32);
            let tag = Tag(tag as u32);
            if name == "MPI_Isend" {
                let request = ReqId(get_u64_or(args, "request", 0)? as u32);
                MpiOp::Isend {
                    dest,
                    tag,
                    comm,
                    count,
                    request,
                }
            } else {
                MpiOp::Send {
                    dest,
                    tag,
                    comm,
                    count,
                }
            }
        }
        "MPI_Irecv" | "MPI_Recv" => {
            let src = source_sel(get_i64(args, "source")?);
            let tag = tag_sel(get_i64(args, "tag")?);
            if name == "MPI_Irecv" {
                let request = ReqId(get_u64_or(args, "request", 0)? as u32);
                MpiOp::Irecv {
                    src,
                    tag,
                    comm,
                    count,
                    request,
                }
            } else {
                MpiOp::Recv {
                    src,
                    tag,
                    comm,
                    count,
                }
            }
        }
        "MPI_Wait" => MpiOp::Wait {
            request: ReqId(get_u64_or(args, "request", 0)? as u32),
        },
        "MPI_Waitall" => MpiOp::Waitall {
            nreqs: count as u32,
        },
        "MPI_Barrier" => MpiOp::Collective {
            kind: CollectiveKind::Barrier,
            comm,
        },
        "MPI_Bcast" => MpiOp::Collective {
            kind: CollectiveKind::Bcast,
            comm,
        },
        "MPI_Reduce" => MpiOp::Collective {
            kind: CollectiveKind::Reduce,
            comm,
        },
        "MPI_Allreduce" => MpiOp::Collective {
            kind: CollectiveKind::Allreduce,
            comm,
        },
        "MPI_Gather" => MpiOp::Collective {
            kind: CollectiveKind::Gather,
            comm,
        },
        "MPI_Gatherv" => MpiOp::Collective {
            kind: CollectiveKind::Gatherv,
            comm,
        },
        "MPI_Allgather" => MpiOp::Collective {
            kind: CollectiveKind::Allgather,
            comm,
        },
        "MPI_Alltoall" => MpiOp::Collective {
            kind: CollectiveKind::Alltoall,
            comm,
        },
        "MPI_Alltoallv" => MpiOp::Collective {
            kind: CollectiveKind::Alltoallv,
            comm,
        },
        "MPI_Scan" => MpiOp::Collective {
            kind: CollectiveKind::Scan,
            comm,
        },
        "MPI_Put" => MpiOp::OneSided {
            kind: OneSidedKind::Put,
        },
        "MPI_Get" => MpiOp::OneSided {
            kind: OneSidedKind::Get,
        },
        "MPI_Accumulate" => MpiOp::OneSided {
            kind: OneSidedKind::Accumulate,
        },
        // Init/finalize/datatype bookkeeping etc.: skip.
        _ => return Ok(None),
    };
    Ok(Some(TimedOp { time, op }))
}

/// Renders one rank's operations back into the text format (the inverse of
/// [`parse_rank_text`]); used by the workload generators and round-trip
/// tests.
pub fn write_rank_text(ops: &[TimedOp]) -> String {
    let mut out = String::new();
    for t in ops {
        let name = t.op.mpi_name();
        // `{}` prints the shortest round-trippable form, so a parse
        // of the written text reproduces the exact f64 timestamps.
        writeln!(out, "{name} entering at walltime {}", t.time).unwrap();
        match t.op {
            MpiOp::Isend {
                dest,
                tag,
                comm,
                count,
                request,
            } => {
                writeln!(out, "int count={count}").unwrap();
                writeln!(out, "int dest={}", dest.0).unwrap();
                writeln!(out, "int tag={}", tag.0).unwrap();
                writeln!(out, "MPI_Comm comm={}", comm.0).unwrap();
                writeln!(out, "MPI_Request request=[{}]", request.0).unwrap();
            }
            MpiOp::Send {
                dest,
                tag,
                comm,
                count,
            } => {
                writeln!(out, "int count={count}").unwrap();
                writeln!(out, "int dest={}", dest.0).unwrap();
                writeln!(out, "int tag={}", tag.0).unwrap();
                writeln!(out, "MPI_Comm comm={}", comm.0).unwrap();
            }
            MpiOp::Irecv {
                src,
                tag,
                comm,
                count,
                request,
            } => {
                writeln!(out, "int count={count}").unwrap();
                writeln!(out, "int source={}", sel_to_i64(src)).unwrap();
                writeln!(out, "int tag={}", tagsel_to_i64(tag)).unwrap();
                writeln!(out, "MPI_Comm comm={}", comm.0).unwrap();
                writeln!(out, "MPI_Request request=[{}]", request.0).unwrap();
            }
            MpiOp::Recv {
                src,
                tag,
                comm,
                count,
            } => {
                writeln!(out, "int count={count}").unwrap();
                writeln!(out, "int source={}", sel_to_i64(src)).unwrap();
                writeln!(out, "int tag={}", tagsel_to_i64(tag)).unwrap();
                writeln!(out, "MPI_Comm comm={}", comm.0).unwrap();
            }
            MpiOp::Wait { request } => {
                writeln!(out, "MPI_Request request=[{}]", request.0).unwrap();
            }
            MpiOp::Waitall { nreqs } => {
                writeln!(out, "int count={nreqs}").unwrap();
            }
            MpiOp::Collective { comm, .. } => {
                writeln!(out, "MPI_Comm comm={}", comm.0).unwrap();
            }
            MpiOp::OneSided { .. } => {}
        }
        writeln!(out, "{name} returning at walltime {}", t.time).unwrap();
    }
    out
}

fn sel_to_i64(s: SourceSel) -> i64 {
    match s {
        SourceSel::Any => -1,
        SourceSel::Rank(r) => i64::from(r.0),
    }
}

fn tagsel_to_i64(t: TagSel) -> i64 {
    match t {
        TagSel::Any => -1,
        TagSel::Tag(tag) => i64::from(tag.0),
    }
}

/// Parses a trace directory: files `dumpi-<rank>.txt`, one per rank, parsed
/// in parallel across worker threads.
pub fn parse_trace_dir(dir: &Path, app_name: &str) -> Result<AppTrace, String> {
    let mut rank_files: Vec<(u32, std::path::PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| format!("reading {dir:?}: {e}"))? {
        let entry = entry.map_err(|e| e.to_string())?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(rank) = name
            .strip_prefix("dumpi-")
            .and_then(|s| s.strip_suffix(".txt"))
        {
            let rank: u32 = rank
                .parse()
                .map_err(|_| format!("bad rank in file name {name}"))?;
            rank_files.push((rank, entry.path()));
        }
    }
    if rank_files.is_empty() {
        return Err(format!("no dumpi-<rank>.txt files in {dir:?}"));
    }
    rank_files.sort_by_key(|(r, _)| *r);

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let results: Vec<Result<RankTrace, String>> = crossbeam::thread::scope(|scope| {
        let chunks: Vec<_> = rank_files
            .chunks(rank_files.len().div_ceil(workers))
            .collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move |_| {
                    chunk
                        .iter()
                        .map(|(rank, path)| {
                            let text = std::fs::read_to_string(path)
                                .map_err(|e| format!("reading {path:?}: {e}"))?;
                            let parsed = parse_rank_text(&text)
                                .map_err(|e| format!("parsing {path:?}: {e}"))?;
                            Ok(RankTrace {
                                rank: Rank(*rank),
                                ops: parsed.ops,
                            })
                        })
                        .collect::<Vec<Result<RankTrace, String>>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parser thread panicked"))
            .collect()
    })
    .expect("parser scope");

    let ranks: Result<Vec<RankTrace>, String> = results.into_iter().collect();
    Ok(AppTrace {
        name: app_name.to_string(),
        ranks: ranks?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
MPI_Irecv entering at walltime 1.000000
int count=4
int source=2
int tag=7
MPI_Comm comm=0
MPI_Request request=[1]
MPI_Irecv returning at walltime 1.000100
MPI_Isend entering at walltime 1.100000
int count=4
int dest=2
int tag=7
MPI_Comm comm=0
MPI_Request request=[2]
MPI_Isend returning at walltime 1.100100
MPI_Waitall entering at walltime 1.200000
int count=2
MPI_Waitall returning at walltime 1.300000
MPI_Allreduce entering at walltime 1.400000
MPI_Comm comm=0
MPI_Allreduce returning at walltime 1.500000
";

    #[test]
    fn parses_the_core_call_set() {
        let parsed = parse_rank_text(SAMPLE).unwrap();
        assert_eq!(parsed.ops.len(), 4);
        assert_eq!(parsed.skipped_calls, 0);
        assert!(matches!(parsed.ops[0].op, MpiOp::Irecv { .. }));
        assert!(matches!(parsed.ops[1].op, MpiOp::Isend { .. }));
        assert!(matches!(parsed.ops[2].op, MpiOp::Waitall { nreqs: 2 }));
        assert!(matches!(
            parsed.ops[3].op,
            MpiOp::Collective {
                kind: CollectiveKind::Allreduce,
                ..
            }
        ));
    }

    #[test]
    fn wildcards_parse_from_negative_values() {
        let text = "\
MPI_Irecv entering at walltime 0.5
int count=1
int source=-1
int tag=-1
MPI_Comm comm=0
MPI_Request request=[0]
MPI_Irecv returning at walltime 0.6
";
        let parsed = parse_rank_text(text).unwrap();
        let MpiOp::Irecv { src, tag, .. } = parsed.ops[0].op else {
            panic!()
        };
        assert_eq!(src, SourceSel::Any);
        assert_eq!(tag, TagSel::Any);
    }

    #[test]
    fn unknown_functions_are_skipped_not_fatal() {
        let text = "\
MPI_Comm_rank entering at walltime 0.1
int rank=0
MPI_Comm_rank returning at walltime 0.1
MPI_Send entering at walltime 0.2
int count=1
int dest=1
int tag=0
MPI_Comm comm=0
MPI_Send returning at walltime 0.2
";
        let parsed = parse_rank_text(text).unwrap();
        assert_eq!(parsed.ops.len(), 1);
        assert_eq!(parsed.skipped_calls, 1);
    }

    #[test]
    fn malformed_numeric_fields_are_errors_not_zero() {
        let text = "\
MPI_Send entering at walltime 0.2
int count=garbage
int dest=1
int tag=0
MPI_Comm comm=0
MPI_Send returning at walltime 0.2
";
        let e = parse_rank_text(text).unwrap_err();
        assert!(e.message.contains("count"), "got: {e}");
    }

    #[test]
    fn sends_with_wildcards_are_rejected() {
        let text = "\
MPI_Send entering at walltime 0.2
int count=1
int dest=-1
int tag=0
MPI_Comm comm=0
MPI_Send returning at walltime 0.2
";
        assert!(parse_rank_text(text).is_err());
    }

    #[test]
    fn unterminated_call_is_an_error() {
        let text = "MPI_Send entering at walltime 0.1\nint dest=0\n";
        let e = parse_rank_text(text).unwrap_err();
        assert!(e.message.contains("never returned"));
    }

    #[test]
    fn garbage_line_reports_its_number() {
        let text = "this is not a trace\n";
        let e = parse_rank_text(text).unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored_between_calls() {
        let text = "\
# a comment

MPI_Barrier entering at walltime 0.1
MPI_Comm comm=0
MPI_Barrier returning at walltime 0.2
";
        assert_eq!(parse_rank_text(text).unwrap().ops.len(), 1);
    }

    #[test]
    fn writer_round_trips_through_parser() {
        let parsed = parse_rank_text(SAMPLE).unwrap();
        let text = write_rank_text(&parsed.ops);
        let reparsed = parse_rank_text(&text).unwrap();
        assert_eq!(parsed.ops, reparsed.ops);
    }

    #[test]
    fn directory_parse_assembles_ranks_in_order() {
        let dir = std::env::temp_dir().join(format!("otm-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for rank in [1u32, 0] {
            std::fs::write(
                dir.join(format!("dumpi-{rank}.txt")),
                format!(
                    "MPI_Send entering at walltime 0.1\nint count=1\nint dest={}\nint tag=0\nMPI_Comm comm=0\nMPI_Send returning at walltime 0.1\n",
                    1 - rank
                ),
            )
            .unwrap();
        }
        let trace = parse_trace_dir(&dir, "test-app").unwrap();
        assert_eq!(trace.processes(), 2);
        assert_eq!(trace.ranks[0].rank, Rank(0));
        assert_eq!(trace.ranks[1].rank, Rank(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_a_clean_error() {
        let e = parse_trace_dir(Path::new("/nonexistent/otm"), "x").unwrap_err();
        assert!(e.contains("reading"));
    }
}
