//! The trace processing stage (§V-A b): replay the merged operation stream
//! through per-rank matcher emulations and gather statistics.
//!
//! "Each MPI operation within the in-memory representation of the trace
//! gets sequentially processed until none remain. Only p2p and progress
//! operations are processed, ignoring collectives and one-sided." Receives
//! post into their rank's matcher; sends become incoming messages at the
//! destination rank's matcher; progress operations snapshot the state of
//! the data structures, forming the data points of §V-A.

use crate::emul::FourIndexMatcher;
use crate::model::{AppTrace, CallKind, MpiOp, TimedOp};
use mpi_matching::{MatchStats, MatchingBackend, MsgHandle, RecvHandle};
use otm_base::{Envelope, ReceivePattern};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Analyzer parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Bins per hash table (the Fig. 7 sweep parameter; 1 = traditional).
    pub bins: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig { bins: 128 }
    }
}

/// Fig. 6: the distribution of MPI call types.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallDistribution {
    /// Point-to-point calls.
    pub p2p: u64,
    /// Collective calls.
    pub collective: u64,
    /// One-sided calls.
    pub one_sided: u64,
    /// Progress calls (Wait/Waitall) — shown separately from p2p in our
    /// reports; the paper folds them out of the distribution.
    pub progress: u64,
}

impl CallDistribution {
    /// Total communication calls (excluding progress).
    pub fn comm_total(&self) -> u64 {
        self.p2p + self.collective + self.one_sided
    }

    /// Fraction of p2p among communication calls.
    pub fn p2p_fraction(&self) -> f64 {
        if self.comm_total() == 0 {
            0.0
        } else {
            self.p2p as f64 / self.comm_total() as f64
        }
    }

    /// Fraction of collectives among communication calls.
    pub fn collective_fraction(&self) -> f64 {
        if self.comm_total() == 0 {
            0.0
        } else {
            self.collective as f64 / self.comm_total() as f64
        }
    }

    /// Fraction of one-sided among communication calls.
    pub fn one_sided_fraction(&self) -> f64 {
        if self.comm_total() == 0 {
            0.0
        } else {
            self.one_sided as f64 / self.comm_total() as f64
        }
    }
}

/// Tag-usage statistics (§V: "the number of unique source/tag posted
/// receives is low, indicating that the receives are well spread in the
/// hash tables").
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TagUsage {
    /// Distinct tags across all sends.
    pub distinct_tags: usize,
    /// Distinct `(src, tag)` pairs across all sends.
    pub distinct_src_tag_pairs: usize,
    /// Fraction of receives using any wildcard.
    pub wildcard_recv_fraction: f64,
}

/// Per-application analyzer output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppReport {
    /// Application name (Table II).
    pub name: String,
    /// Number of processes in the trace.
    pub processes: usize,
    /// Bin count the replay used.
    pub bins: usize,
    /// Fig. 6 call distribution.
    pub call_dist: CallDistribution,
    /// Matching statistics merged over all ranks (queue depths of Fig. 7).
    pub match_stats: MatchStats,
    /// Mean search depth over both queues.
    pub mean_queue_depth: f64,
    /// Maximum search depth over both queues.
    pub max_queue_depth: u64,
    /// Average empty-bin fraction sampled at progress points.
    pub avg_empty_bin_fraction: f64,
    /// Tag usage statistics.
    pub tag_usage: TagUsage,
    /// Receives still pending when the trace ended.
    pub final_prq: usize,
    /// Messages still unexpected when the trace ended.
    pub final_umq: usize,
    /// Progress-point data points collected.
    pub datapoints: usize,
}

/// Replays an application trace with the given bin count.
pub fn replay(trace: &AppTrace, config: &ReplayConfig) -> AppReport {
    let n = trace
        .ranks
        .iter()
        .map(|r| r.rank.0 as usize + 1)
        .max()
        .unwrap_or(0);
    // Each rank's matcher is selected through the backend trait — the same
    // interface the simulator's service layer uses — with the bin-occupancy
    // sampling reached through the observability downcast.
    let mut matchers: Vec<Box<dyn MatchingBackend>> = (0..n)
        .map(|_| Box::new(FourIndexMatcher::new(config.bins)) as Box<dyn MatchingBackend>)
        .collect();
    let mut dist = CallDistribution::default();
    let mut tags: HashSet<u32> = HashSet::new();
    let mut src_tag_pairs: HashSet<(u32, u32)> = HashSet::new();
    let mut recv_count = 0u64;
    let mut wildcard_recvs = 0u64;
    let mut next_recv = 0u64;
    let mut next_msg = 0u64;
    let mut empty_bin_sum = 0.0f64;
    let mut datapoints = 0usize;
    let metrics = crate::obs::replay_metrics();

    for (rank, TimedOp { op, .. }) in trace.merged_ops() {
        metrics.count_op();
        match op.kind() {
            CallKind::PointToPoint => dist.p2p += 1,
            CallKind::Collective => dist.collective += 1,
            CallKind::OneSided => dist.one_sided += 1,
            CallKind::Progress => dist.progress += 1,
        }
        match op {
            MpiOp::Irecv { src, tag, comm, .. } | MpiOp::Recv { src, tag, comm, .. } => {
                metrics.count_post();
                recv_count += 1;
                if src.is_wild() || tag.is_wild() {
                    wildcard_recvs += 1;
                }
                let pattern = ReceivePattern { src, tag, comm };
                let handle = RecvHandle(next_recv);
                next_recv += 1;
                matchers[rank.0 as usize]
                    .post(pattern, handle)
                    .expect("four-index matcher is unbounded");
            }
            MpiOp::Isend {
                dest, tag, comm, ..
            }
            | MpiOp::Send {
                dest, tag, comm, ..
            } => {
                tags.insert(tag.0);
                src_tag_pairs.insert((rank.0, tag.0));
                metrics.count_arrive();
                let env = Envelope {
                    src: rank,
                    tag,
                    comm,
                };
                let handle = MsgHandle(next_msg);
                next_msg += 1;
                if (dest.0 as usize) < matchers.len() {
                    matchers[dest.0 as usize]
                        .arrive_block(&[(env, handle)])
                        .expect("four-index matcher is unbounded");
                }
            }
            MpiOp::Wait { .. } | MpiOp::Waitall { .. } => {
                // Progress point: snapshot the data-structure state (§V-A).
                metrics.count_progress_point();
                empty_bin_sum += matchers[rank.0 as usize]
                    .as_any()
                    .downcast_ref::<FourIndexMatcher>()
                    .expect("replay runs on the four-index emulation")
                    .prq_empty_bin_fraction();
                datapoints += 1;
            }
            MpiOp::Collective { .. } | MpiOp::OneSided { .. } => {}
        }
    }

    let mut merged = MatchStats::new();
    let mut final_prq = 0usize;
    let mut final_umq = 0usize;
    for m in &matchers {
        m.merge_stats(&mut merged);
        final_prq += m.prq_len();
        final_umq += m.umq_len();
    }

    AppReport {
        name: trace.name.clone(),
        processes: trace.processes(),
        bins: config.bins,
        mean_queue_depth: merged.mean_depth(),
        max_queue_depth: merged.max_depth(),
        call_dist: dist,
        match_stats: merged,
        avg_empty_bin_fraction: if datapoints == 0 {
            1.0
        } else {
            empty_bin_sum / datapoints as f64
        },
        tag_usage: TagUsage {
            distinct_tags: tags.len(),
            distinct_src_tag_pairs: src_tag_pairs.len(),
            wildcard_recv_fraction: if recv_count == 0 {
                0.0
            } else {
                wildcard_recvs as f64 / recv_count as f64
            },
        },
        final_prq,
        final_umq,
        datapoints,
    }
}

/// Convenience: replays the same trace at several bin counts (the Fig. 7
/// sweep).
pub fn bin_sweep(trace: &AppTrace, bins: &[usize]) -> Vec<AppReport> {
    bins.iter()
        .map(|&b| replay(trace, &ReplayConfig { bins: b }))
        .collect()
}

/// Replays an application trace through the *real* optimistic engine
/// (`otm::SequentialOtm`) instead of the analyzer's lightweight emulation.
///
/// Because matchers of different ranks never interact (each rank owns its
/// own matching state), ranks are replayed one at a time — rank-major —
/// with a fresh engine each, keeping memory flat even for thousand-rank
/// traces while still driving every post and arrival through the engine's
/// descriptor table, index structures and unexpected store.
///
/// The returned report carries the same matching statistics as [`replay`];
/// the engine and the emulation implement the same §III-B organization with
/// the same hash function, so their outcome counters *and search depths*
/// must agree exactly — an equivalence the integration tests assert for
/// every Table II application.
pub fn replay_engine(trace: &AppTrace, config: &ReplayConfig) -> AppReport {
    use otm_base::MatchConfig;

    let n = trace
        .ranks
        .iter()
        .map(|r| r.rank.0 as usize + 1)
        .max()
        .unwrap_or(0);
    // Per-rank event streams in global time order: the rank's own receive
    // posts plus the sends targeting it.
    #[derive(Clone, Copy)]
    enum Ev {
        Post(ReceivePattern),
        Arrive(Envelope),
    }
    // merged_ops() is globally time-ordered, so pushing into the per-rank
    // lists preserves each rank's event order without extra keys.
    let mut per_rank: Vec<Vec<Ev>> = vec![Vec::new(); n];
    let mut dist = CallDistribution::default();
    let metrics = crate::obs::replay_metrics();
    for (rank, TimedOp { op, .. }) in trace.merged_ops() {
        metrics.count_op();
        match op.kind() {
            CallKind::PointToPoint => dist.p2p += 1,
            CallKind::Collective => dist.collective += 1,
            CallKind::OneSided => dist.one_sided += 1,
            CallKind::Progress => dist.progress += 1,
        }
        match op {
            MpiOp::Irecv { src, tag, comm, .. } | MpiOp::Recv { src, tag, comm, .. } => {
                per_rank[rank.0 as usize].push(Ev::Post(ReceivePattern { src, tag, comm }));
            }
            MpiOp::Isend {
                dest, tag, comm, ..
            }
            | MpiOp::Send {
                dest, tag, comm, ..
            } if (dest.0 as usize) < n => {
                per_rank[dest.0 as usize].push(Ev::Arrive(Envelope {
                    src: rank,
                    tag,
                    comm,
                }));
            }
            _ => {}
        }
    }

    let mut merged = MatchStats::new();
    let mut final_prq = 0usize;
    let mut final_umq = 0usize;
    let mut next_recv = 0u64;
    let mut next_msg = 0u64;
    for events in &per_rank {
        if events.is_empty() {
            continue;
        }
        metrics.record_rank_events(events.len() as u64);
        // Generous fixed table: a single rank's in-flight receives in the
        // Table II workloads stay far below this.
        let engine_config = MatchConfig::default()
            .with_bins(config.bins)
            .with_block_threads(1)
            .with_max_receives(1 << 14)
            .with_max_unexpected(1 << 14);
        // Constructed through the same backend trait the simulator's
        // service layer uses, so this path exercises the real trait-object
        // dispatch end to end.
        let mut engine: Box<dyn MatchingBackend> =
            Box::new(otm::SequentialOtm::new(engine_config).expect("engine replay configuration"));
        for &ev in events {
            match ev {
                Ev::Post(pattern) => {
                    metrics.count_post();
                    engine
                        .post(pattern, RecvHandle(next_recv))
                        .expect("replay within engine capacity");
                    next_recv += 1;
                }
                Ev::Arrive(env) => {
                    metrics.count_arrive();
                    engine
                        .arrive_block(&[(env, MsgHandle(next_msg))])
                        .expect("replay within engine capacity");
                    next_msg += 1;
                }
            }
        }
        engine.merge_stats(&mut merged);
        final_prq += engine.prq_len();
        final_umq += engine.umq_len();
    }

    AppReport {
        name: trace.name.clone(),
        processes: trace.processes(),
        bins: config.bins,
        mean_queue_depth: merged.mean_depth(),
        max_queue_depth: merged.max_depth(),
        call_dist: dist,
        match_stats: merged,
        // The engine does not expose bin-occupancy sampling; progress
        // points are counted but not sampled.
        avg_empty_bin_fraction: 1.0,
        tag_usage: TagUsage::default(),
        final_prq,
        final_umq,
        datapoints: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CollectiveKind, RankTrace, ReqId};
    use otm_base::envelope::{SourceSel, TagSel};
    use otm_base::{CommId, Rank, Tag};

    fn two_rank_trace() -> AppTrace {
        // Rank 1 posts two receives, rank 0 sends two matching messages,
        // then both do progress + a collective.
        let r0 = RankTrace {
            rank: Rank(0),
            ops: vec![
                TimedOp {
                    time: 2.0,
                    op: MpiOp::Isend {
                        dest: Rank(1),
                        tag: Tag(5),
                        comm: CommId::WORLD,
                        count: 1,
                        request: ReqId(0),
                    },
                },
                TimedOp {
                    time: 3.0,
                    op: MpiOp::Send {
                        dest: Rank(1),
                        tag: Tag(6),
                        comm: CommId::WORLD,
                        count: 1,
                    },
                },
                TimedOp {
                    time: 4.0,
                    op: MpiOp::Collective {
                        kind: CollectiveKind::Allreduce,
                        comm: CommId::WORLD,
                    },
                },
            ],
        };
        let r1 = RankTrace {
            rank: Rank(1),
            ops: vec![
                TimedOp {
                    time: 1.0,
                    op: MpiOp::Irecv {
                        src: SourceSel::Rank(Rank(0)),
                        tag: TagSel::Tag(Tag(5)),
                        comm: CommId::WORLD,
                        count: 1,
                        request: ReqId(1),
                    },
                },
                TimedOp {
                    time: 1.5,
                    op: MpiOp::Irecv {
                        src: SourceSel::Any,
                        tag: TagSel::Tag(Tag(6)),
                        comm: CommId::WORLD,
                        count: 1,
                        request: ReqId(2),
                    },
                },
                TimedOp {
                    time: 3.5,
                    op: MpiOp::Waitall { nreqs: 2 },
                },
                TimedOp {
                    time: 4.0,
                    op: MpiOp::Collective {
                        kind: CollectiveKind::Allreduce,
                        comm: CommId::WORLD,
                    },
                },
            ],
        };
        AppTrace {
            name: "two-rank".into(),
            ranks: vec![r0, r1],
        }
    }

    #[test]
    fn call_distribution_counts_kinds() {
        let report = replay(&two_rank_trace(), &ReplayConfig::default());
        assert_eq!(report.call_dist.p2p, 4);
        assert_eq!(report.call_dist.collective, 2);
        assert_eq!(report.call_dist.one_sided, 0);
        assert_eq!(report.call_dist.progress, 1);
        assert!((report.call_dist.p2p_fraction() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn all_messages_match_pre_posted_receives() {
        let report = replay(&two_rank_trace(), &ReplayConfig::default());
        assert_eq!(report.match_stats.matched_on_arrival, 2);
        assert_eq!(report.match_stats.unexpected, 0);
        assert_eq!(report.final_prq, 0);
        assert_eq!(report.final_umq, 0);
    }

    #[test]
    fn tag_usage_reflects_the_send_side() {
        let report = replay(&two_rank_trace(), &ReplayConfig::default());
        assert_eq!(report.tag_usage.distinct_tags, 2);
        assert_eq!(report.tag_usage.distinct_src_tag_pairs, 2);
        assert!((report.tag_usage.wildcard_recv_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn progress_points_sample_bin_occupancy() {
        let report = replay(&two_rank_trace(), &ReplayConfig::default());
        assert_eq!(report.datapoints, 1);
        // At the Waitall both receives were already consumed, so the bins
        // sampled empty.
        assert!(report.avg_empty_bin_fraction > 0.99);
    }

    #[test]
    fn bin_sweep_produces_one_report_per_count() {
        let reports = bin_sweep(&two_rank_trace(), &[1, 32, 128]);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].bins, 1);
        assert_eq!(reports[2].bins, 128);
    }

    #[test]
    fn unmatched_receives_and_sends_show_in_final_state() {
        let trace = AppTrace {
            name: "dangling".into(),
            ranks: vec![RankTrace {
                rank: Rank(0),
                ops: vec![
                    TimedOp {
                        time: 0.0,
                        op: MpiOp::Irecv {
                            src: SourceSel::Rank(Rank(0)),
                            tag: TagSel::Tag(Tag(1)),
                            comm: CommId::WORLD,
                            count: 1,
                            request: ReqId(0),
                        },
                    },
                    TimedOp {
                        time: 1.0,
                        op: MpiOp::Send {
                            dest: Rank(0),
                            tag: Tag(9),
                            comm: CommId::WORLD,
                            count: 1,
                        },
                    },
                ],
            }],
        };
        let report = replay(&trace, &ReplayConfig::default());
        assert_eq!(report.final_prq, 1);
        assert_eq!(report.final_umq, 1);
        assert_eq!(report.match_stats.unexpected, 1);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn replay_reports_progress_through_the_metrics_registry() {
        // The registry is process-wide and tests run in parallel: assert
        // only that this replay's contribution is present in the delta.
        let before = crate::obs::replay_metrics().snapshot();
        let _ = replay(&two_rank_trace(), &ReplayConfig::default());
        let _ = replay_engine(&two_rank_trace(), &ReplayConfig::default());
        let d = crate::obs::replay_metrics().snapshot().delta(&before);
        assert!(d.counters["trace_replay_ops_total"] >= 14, "{d:?}");
        assert!(d.counters["trace_replay_posts_total"] >= 4);
        assert!(d.counters["trace_replay_arrivals_total"] >= 4);
        assert!(d.counters["trace_replay_progress_points_total"] >= 1);
        assert!(d.hists["trace_replay_rank_events"].count >= 1);
    }

    #[test]
    fn sends_to_ranks_outside_the_trace_are_dropped() {
        let trace = AppTrace {
            name: "oob".into(),
            ranks: vec![RankTrace {
                rank: Rank(0),
                ops: vec![TimedOp {
                    time: 0.0,
                    op: MpiOp::Send {
                        dest: Rank(99),
                        tag: Tag(0),
                        comm: CommId::WORLD,
                        count: 1,
                    },
                }],
            }],
        };
        let report = replay(&trace, &ReplayConfig::default());
        assert_eq!(report.call_dist.p2p, 1);
        assert_eq!(report.final_umq, 0);
    }
}
