//! Binary trace cache (§V-A).
//!
//! "Initially, the parser verifies the existence of a binary cache for the
//! given input trace, as parsing the traces of an application is the most
//! time-consuming step for the analyzer." The cache is a small hand-rolled
//! little-endian format (no extra dependencies): magic, version, then the
//! per-rank operation streams with one tag byte per operation.

use crate::model::{AppTrace, CollectiveKind, MpiOp, OneSidedKind, RankTrace, ReqId, TimedOp};
use otm_base::envelope::{SourceSel, TagSel};
use otm_base::{CommId, Rank, Tag};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"OTMTRACE";
const VERSION: u32 = 1;

/// Cache I/O or format error.
#[derive(Debug)]
pub enum CacheError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a cache file / wrong version / truncated or corrupt payload.
    Format(String),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "cache io: {e}"),
            CacheError::Format(m) => write!(f, "cache format: {m}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<std::io::Error> for CacheError {
    fn from(e: std::io::Error) -> Self {
        CacheError::Io(e)
    }
}

fn format_err<T>(m: impl Into<String>) -> Result<T, CacheError> {
    Err(CacheError::Format(m.into()))
}

struct Writer<W: Write> {
    out: W,
}

impl<W: Write> Writer<W> {
    fn u8(&mut self, v: u8) -> Result<(), CacheError> {
        self.out.write_all(&[v]).map_err(Into::into)
    }
    fn u16(&mut self, v: u16) -> Result<(), CacheError> {
        self.out.write_all(&v.to_le_bytes()).map_err(Into::into)
    }
    fn u32(&mut self, v: u32) -> Result<(), CacheError> {
        self.out.write_all(&v.to_le_bytes()).map_err(Into::into)
    }
    fn u64(&mut self, v: u64) -> Result<(), CacheError> {
        self.out.write_all(&v.to_le_bytes()).map_err(Into::into)
    }
    fn i64(&mut self, v: i64) -> Result<(), CacheError> {
        self.out.write_all(&v.to_le_bytes()).map_err(Into::into)
    }
    fn f64(&mut self, v: f64) -> Result<(), CacheError> {
        self.out.write_all(&v.to_le_bytes()).map_err(Into::into)
    }
    fn bytes(&mut self, v: &[u8]) -> Result<(), CacheError> {
        self.u32(v.len() as u32)?;
        self.out.write_all(v).map_err(Into::into)
    }
}

struct Reader<R: Read> {
    inp: R,
}

impl<R: Read> Reader<R> {
    fn u8(&mut self) -> Result<u8, CacheError> {
        let mut b = [0u8; 1];
        self.inp.read_exact(&mut b)?;
        Ok(b[0])
    }
    fn u16(&mut self) -> Result<u16, CacheError> {
        let mut b = [0u8; 2];
        self.inp.read_exact(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }
    fn u32(&mut self) -> Result<u32, CacheError> {
        let mut b = [0u8; 4];
        self.inp.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> Result<u64, CacheError> {
        let mut b = [0u8; 8];
        self.inp.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn i64(&mut self) -> Result<i64, CacheError> {
        let mut b = [0u8; 8];
        self.inp.read_exact(&mut b)?;
        Ok(i64::from_le_bytes(b))
    }
    fn f64(&mut self) -> Result<f64, CacheError> {
        let mut b = [0u8; 8];
        self.inp.read_exact(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }
    fn bytes(&mut self) -> Result<Vec<u8>, CacheError> {
        let len = self.u32()? as usize;
        if len > 64 * 1024 * 1024 {
            return format_err("string length exceeds sanity bound");
        }
        let mut v = vec![0u8; len];
        self.inp.read_exact(&mut v)?;
        Ok(v)
    }
}

fn src_to_i64(s: SourceSel) -> i64 {
    match s {
        SourceSel::Any => -1,
        SourceSel::Rank(r) => i64::from(r.0),
    }
}

fn tag_to_i64(t: TagSel) -> i64 {
    match t {
        TagSel::Any => -1,
        TagSel::Tag(tag) => i64::from(tag.0),
    }
}

fn i64_to_src(v: i64) -> SourceSel {
    if v < 0 {
        SourceSel::Any
    } else {
        SourceSel::Rank(Rank(v as u32))
    }
}

fn i64_to_tag(v: i64) -> TagSel {
    if v < 0 {
        TagSel::Any
    } else {
        TagSel::Tag(Tag(v as u32))
    }
}

fn collective_code(k: CollectiveKind) -> u8 {
    match k {
        CollectiveKind::Barrier => 0,
        CollectiveKind::Bcast => 1,
        CollectiveKind::Reduce => 2,
        CollectiveKind::Allreduce => 3,
        CollectiveKind::Gather => 4,
        CollectiveKind::Gatherv => 5,
        CollectiveKind::Allgather => 6,
        CollectiveKind::Alltoall => 7,
        CollectiveKind::Alltoallv => 8,
        CollectiveKind::Scan => 9,
    }
}

fn code_collective(c: u8) -> Result<CollectiveKind, CacheError> {
    Ok(match c {
        0 => CollectiveKind::Barrier,
        1 => CollectiveKind::Bcast,
        2 => CollectiveKind::Reduce,
        3 => CollectiveKind::Allreduce,
        4 => CollectiveKind::Gather,
        5 => CollectiveKind::Gatherv,
        6 => CollectiveKind::Allgather,
        7 => CollectiveKind::Alltoall,
        8 => CollectiveKind::Alltoallv,
        9 => CollectiveKind::Scan,
        _ => return format_err(format!("unknown collective code {c}")),
    })
}

fn onesided_code(k: OneSidedKind) -> u8 {
    match k {
        OneSidedKind::Put => 0,
        OneSidedKind::Get => 1,
        OneSidedKind::Accumulate => 2,
    }
}

fn code_onesided(c: u8) -> Result<OneSidedKind, CacheError> {
    Ok(match c {
        0 => OneSidedKind::Put,
        1 => OneSidedKind::Get,
        2 => OneSidedKind::Accumulate,
        _ => return format_err(format!("unknown one-sided code {c}")),
    })
}

/// Serializes a trace to any writer.
pub fn write_trace<W: Write>(trace: &AppTrace, out: W) -> Result<(), CacheError> {
    // The on-disk format stores counts as u32; reject anything the reader
    // could not round-trip instead of silently truncating the cast.
    if trace.ranks.len() > u32::MAX as usize {
        return format_err("more ranks than the cache format can represent");
    }
    if let Some(r) = trace.ranks.iter().find(|r| r.ops.len() > u32::MAX as usize) {
        return format_err(format!(
            "rank {} has more ops than the cache format can represent",
            r.rank.0
        ));
    }
    let mut w = Writer { out };
    w.out.write_all(MAGIC)?;
    w.u32(VERSION)?;
    w.bytes(trace.name.as_bytes())?;
    w.u32(trace.ranks.len() as u32)?;
    for rank in &trace.ranks {
        w.u32(rank.rank.0)?;
        w.u32(rank.ops.len() as u32)?;
        for t in &rank.ops {
            w.f64(t.time)?;
            match t.op {
                MpiOp::Isend {
                    dest,
                    tag,
                    comm,
                    count,
                    request,
                } => {
                    w.u8(0)?;
                    w.u32(dest.0)?;
                    w.u32(tag.0)?;
                    w.u16(comm.0)?;
                    w.u64(count)?;
                    w.u32(request.0)?;
                }
                MpiOp::Irecv {
                    src,
                    tag,
                    comm,
                    count,
                    request,
                } => {
                    w.u8(1)?;
                    w.i64(src_to_i64(src))?;
                    w.i64(tag_to_i64(tag))?;
                    w.u16(comm.0)?;
                    w.u64(count)?;
                    w.u32(request.0)?;
                }
                MpiOp::Send {
                    dest,
                    tag,
                    comm,
                    count,
                } => {
                    w.u8(2)?;
                    w.u32(dest.0)?;
                    w.u32(tag.0)?;
                    w.u16(comm.0)?;
                    w.u64(count)?;
                }
                MpiOp::Recv {
                    src,
                    tag,
                    comm,
                    count,
                } => {
                    w.u8(3)?;
                    w.i64(src_to_i64(src))?;
                    w.i64(tag_to_i64(tag))?;
                    w.u16(comm.0)?;
                    w.u64(count)?;
                }
                MpiOp::Wait { request } => {
                    w.u8(4)?;
                    w.u32(request.0)?;
                }
                MpiOp::Waitall { nreqs } => {
                    w.u8(5)?;
                    w.u32(nreqs)?;
                }
                MpiOp::Collective { kind, comm } => {
                    w.u8(6)?;
                    w.u8(collective_code(kind))?;
                    w.u16(comm.0)?;
                }
                MpiOp::OneSided { kind } => {
                    w.u8(7)?;
                    w.u8(onesided_code(kind))?;
                }
            }
        }
    }
    Ok(())
}

/// Deserializes a trace from any reader.
pub fn read_trace<R: Read>(inp: R) -> Result<AppTrace, CacheError> {
    let mut r = Reader { inp };
    let mut magic = [0u8; 8];
    r.inp.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return format_err("bad magic (not an OTM trace cache)");
    }
    let version = r.u32()?;
    if version != VERSION {
        return format_err(format!("unsupported cache version {version}"));
    }
    let name =
        String::from_utf8(r.bytes()?).map_err(|_| CacheError::Format("name not UTF-8".into()))?;
    let nranks = r.u32()? as usize;
    if nranks > 1 << 20 {
        return format_err("rank count exceeds sanity bound");
    }
    let mut ranks = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let rank = Rank(r.u32()?);
        let nops = r.u32()? as usize;
        // Cap the preallocation, not the count: a corrupt header cannot
        // OOM us, while any trace the writer produced still loads (reads
        // past the real end fail with a clean Io error).
        let mut ops = Vec::with_capacity(nops.min(1 << 20));
        for _ in 0..nops {
            let time = r.f64()?;
            let op = match r.u8()? {
                0 => MpiOp::Isend {
                    dest: Rank(r.u32()?),
                    tag: Tag(r.u32()?),
                    comm: CommId(r.u16()?),
                    count: r.u64()?,
                    request: ReqId(r.u32()?),
                },
                1 => MpiOp::Irecv {
                    src: i64_to_src(r.i64()?),
                    tag: i64_to_tag(r.i64()?),
                    comm: CommId(r.u16()?),
                    count: r.u64()?,
                    request: ReqId(r.u32()?),
                },
                2 => MpiOp::Send {
                    dest: Rank(r.u32()?),
                    tag: Tag(r.u32()?),
                    comm: CommId(r.u16()?),
                    count: r.u64()?,
                },
                3 => MpiOp::Recv {
                    src: i64_to_src(r.i64()?),
                    tag: i64_to_tag(r.i64()?),
                    comm: CommId(r.u16()?),
                    count: r.u64()?,
                },
                4 => MpiOp::Wait {
                    request: ReqId(r.u32()?),
                },
                5 => MpiOp::Waitall { nreqs: r.u32()? },
                6 => MpiOp::Collective {
                    kind: code_collective(r.u8()?)?,
                    comm: CommId(r.u16()?),
                },
                7 => MpiOp::OneSided {
                    kind: code_onesided(r.u8()?)?,
                },
                c => return format_err(format!("unknown op code {c}")),
            };
            ops.push(TimedOp { time, op });
        }
        ranks.push(RankTrace { rank, ops });
    }
    Ok(AppTrace { name, ranks })
}

/// Saves a trace cache to a file.
pub fn save(trace: &AppTrace, path: &Path) -> Result<(), CacheError> {
    let file = std::fs::File::create(path)?;
    write_trace(trace, std::io::BufWriter::new(file))
}

/// Loads a trace cache from a file.
pub fn load(path: &Path) -> Result<AppTrace, CacheError> {
    let file = std::fs::File::open(path)?;
    read_trace(std::io::BufReader::new(file))
}

/// The §V-A fast path: load the cache if present, otherwise parse the text
/// trace directory and commit the cache for future runs.
pub fn load_or_parse(dir: &Path, cache_path: &Path, app_name: &str) -> Result<AppTrace, String> {
    if cache_path.exists() {
        if let Ok(trace) = load(cache_path) {
            return Ok(trace);
        }
        // A corrupt cache falls back to reparsing.
    }
    let trace = crate::dumpi::parse_trace_dir(dir, app_name)?;
    save(&trace, cache_path).map_err(|e| format!("writing cache {cache_path:?}: {e}"))?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> AppTrace {
        AppTrace {
            name: "sample".into(),
            ranks: vec![
                RankTrace {
                    rank: Rank(0),
                    ops: vec![
                        TimedOp {
                            time: 0.5,
                            op: MpiOp::Irecv {
                                src: SourceSel::Any,
                                tag: TagSel::Tag(Tag(3)),
                                comm: CommId::WORLD,
                                count: 8,
                                request: ReqId(1),
                            },
                        },
                        TimedOp {
                            time: 0.6,
                            op: MpiOp::Wait { request: ReqId(1) },
                        },
                        TimedOp {
                            time: 0.7,
                            op: MpiOp::Collective {
                                kind: CollectiveKind::Allreduce,
                                comm: CommId::WORLD,
                            },
                        },
                    ],
                },
                RankTrace {
                    rank: Rank(1),
                    ops: vec![
                        TimedOp {
                            time: 0.55,
                            op: MpiOp::Isend {
                                dest: Rank(0),
                                tag: Tag(3),
                                comm: CommId::WORLD,
                                count: 8,
                                request: ReqId(9),
                            },
                        },
                        TimedOp {
                            time: 0.9,
                            op: MpiOp::OneSided {
                                kind: OneSidedKind::Get,
                            },
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let r = read_trace(&b"NOTATRACEFILE###############"[..]);
        assert!(matches!(r, Err(CacheError::Format(_))));
    }

    #[test]
    fn truncated_payload_is_an_io_error() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(matches!(read_trace(buf.as_slice()), Err(CacheError::Io(_))));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            read_trace(buf.as_slice()),
            Err(CacheError::Format(_))
        ));
    }

    #[test]
    fn file_round_trip_and_cache_fast_path() {
        let dir = std::env::temp_dir().join(format!("otm-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = sample_trace();

        // Write the text form, then load_or_parse twice: the first call
        // parses and commits the cache, the second hits the cache.
        for rank in &trace.ranks {
            std::fs::write(
                dir.join(format!("dumpi-{}.txt", rank.rank.0)),
                crate::dumpi::write_rank_text(&rank.ops),
            )
            .unwrap();
        }
        let cache_path = dir.join("trace.otmcache");
        let first = load_or_parse(&dir, &cache_path, "sample").unwrap();
        assert!(cache_path.exists());
        let second = load_or_parse(&dir, &cache_path, "sample").unwrap();
        assert_eq!(first, second);
        assert_eq!(first.name, "sample");
        assert_eq!(first.processes(), 2);

        // A corrupt cache silently falls back to reparsing.
        std::fs::write(&cache_path, b"garbage").unwrap();
        let third = load_or_parse(&dir, &cache_path, "sample").unwrap();
        assert_eq!(first, third);

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
