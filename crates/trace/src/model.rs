//! The in-memory representation of MPI operations (§V-A: "a custom
//! in-memory representation because it is easier to integrate and tailor to
//! our specific needs").

use otm_base::envelope::{SourceSel, TagSel};
use otm_base::{CommId, Rank, Tag};
use serde::{Deserialize, Serialize};

/// Nonblocking-request identifier within one rank's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReqId(pub u32);

/// Collective operations appearing in the analyzed applications. Matching
/// ignores them; the call-distribution statistics (Fig. 6) count them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CollectiveKind {
    Barrier,
    Bcast,
    Reduce,
    Allreduce,
    Gather,
    Gatherv,
    Allgather,
    Alltoall,
    Alltoallv,
    Scan,
}

/// One-sided operations. None of the analyzed applications use them
/// (Fig. 6), but the model and parser support them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum OneSidedKind {
    Put,
    Get,
    Accumulate,
}

/// One MPI operation as recorded in a rank's trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MpiOp {
    /// Nonblocking send to `dest`.
    Isend {
        /// Destination rank.
        dest: Rank,
        /// Message tag.
        tag: Tag,
        /// Communicator.
        comm: CommId,
        /// Element count (payload size proxy).
        count: u64,
        /// Request handle.
        request: ReqId,
    },
    /// Nonblocking receive.
    Irecv {
        /// Source selector (may be `MPI_ANY_SOURCE`).
        src: SourceSel,
        /// Tag selector (may be `MPI_ANY_TAG`).
        tag: TagSel,
        /// Communicator.
        comm: CommId,
        /// Element count.
        count: u64,
        /// Request handle.
        request: ReqId,
    },
    /// Blocking send (treated as Isend + immediate completion).
    Send {
        /// Destination rank.
        dest: Rank,
        /// Message tag.
        tag: Tag,
        /// Communicator.
        comm: CommId,
        /// Element count.
        count: u64,
    },
    /// Blocking receive (a post followed by a progress point).
    Recv {
        /// Source selector.
        src: SourceSel,
        /// Tag selector.
        tag: TagSel,
        /// Communicator.
        comm: CommId,
        /// Element count.
        count: u64,
    },
    /// Progress on one request.
    Wait {
        /// The awaited request.
        request: ReqId,
    },
    /// Progress on a set of requests.
    Waitall {
        /// Number of awaited requests (the ids are irrelevant to matching).
        nreqs: u32,
    },
    /// A collective operation (ignored by matching).
    Collective {
        /// Which collective.
        kind: CollectiveKind,
        /// Communicator.
        comm: CommId,
    },
    /// A one-sided operation (ignored by matching).
    OneSided {
        /// Which one-sided op.
        kind: OneSidedKind,
    },
}

/// Coarse call classification used by the Fig. 6 distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CallKind {
    /// Point-to-point sends/receives.
    PointToPoint,
    /// Collectives.
    Collective,
    /// One-sided RMA.
    OneSided,
    /// Progress calls (Wait/Waitall).
    Progress,
}

impl MpiOp {
    /// Classifies the operation for the call-distribution statistics.
    pub fn kind(&self) -> CallKind {
        match self {
            MpiOp::Isend { .. } | MpiOp::Irecv { .. } | MpiOp::Send { .. } | MpiOp::Recv { .. } => {
                CallKind::PointToPoint
            }
            MpiOp::Collective { .. } => CallKind::Collective,
            MpiOp::OneSided { .. } => CallKind::OneSided,
            MpiOp::Wait { .. } | MpiOp::Waitall { .. } => CallKind::Progress,
        }
    }

    /// The MPI function name, as it appears in DUMPI text.
    pub fn mpi_name(&self) -> &'static str {
        match self {
            MpiOp::Isend { .. } => "MPI_Isend",
            MpiOp::Irecv { .. } => "MPI_Irecv",
            MpiOp::Send { .. } => "MPI_Send",
            MpiOp::Recv { .. } => "MPI_Recv",
            MpiOp::Wait { .. } => "MPI_Wait",
            MpiOp::Waitall { .. } => "MPI_Waitall",
            MpiOp::Collective { kind, .. } => match kind {
                CollectiveKind::Barrier => "MPI_Barrier",
                CollectiveKind::Bcast => "MPI_Bcast",
                CollectiveKind::Reduce => "MPI_Reduce",
                CollectiveKind::Allreduce => "MPI_Allreduce",
                CollectiveKind::Gather => "MPI_Gather",
                CollectiveKind::Gatherv => "MPI_Gatherv",
                CollectiveKind::Allgather => "MPI_Allgather",
                CollectiveKind::Alltoall => "MPI_Alltoall",
                CollectiveKind::Alltoallv => "MPI_Alltoallv",
                CollectiveKind::Scan => "MPI_Scan",
            },
            MpiOp::OneSided { kind } => match kind {
                OneSidedKind::Put => "MPI_Put",
                OneSidedKind::Get => "MPI_Get",
                OneSidedKind::Accumulate => "MPI_Accumulate",
            },
        }
    }
}

/// An operation stamped with its wall-clock time within the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedOp {
    /// Wall time in seconds since application start.
    pub time: f64,
    /// The operation.
    pub op: MpiOp,
}

/// One rank's complete operation stream, in program order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankTrace {
    /// The rank.
    pub rank: Rank,
    /// Its timestamped operations.
    pub ops: Vec<TimedOp>,
}

/// A whole application trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppTrace {
    /// Application name (Table II).
    pub name: String,
    /// Per-rank traces, indexed by rank.
    pub ranks: Vec<RankTrace>,
}

impl AppTrace {
    /// Number of processes in the trace.
    pub fn processes(&self) -> usize {
        self.ranks.len()
    }

    /// Total operation count.
    pub fn total_ops(&self) -> usize {
        self.ranks.iter().map(|r| r.ops.len()).sum()
    }

    /// Merges all ranks' operations into one stream ordered by timestamp
    /// (ties broken by rank then program order) — the sequential processing
    /// order of the analyzer (§V-A).
    pub fn merged_ops(&self) -> Vec<(Rank, TimedOp)> {
        let mut all: Vec<(Rank, usize, TimedOp)> = Vec::with_capacity(self.total_ops());
        for r in &self.ranks {
            for (i, op) in r.ops.iter().enumerate() {
                all.push((r.rank, i, *op));
            }
        }
        all.sort_by(|a, b| {
            a.2.time
                .partial_cmp(&b.2.time)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
                .then(a.1.cmp(&b.1))
        });
        all.into_iter().map(|(r, _, op)| (r, op)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn isend(t: f64, dest: u32) -> TimedOp {
        TimedOp {
            time: t,
            op: MpiOp::Isend {
                dest: Rank(dest),
                tag: Tag(0),
                comm: CommId::WORLD,
                count: 1,
                request: ReqId(0),
            },
        }
    }

    #[test]
    fn classification_covers_all_kinds() {
        assert_eq!(isend(0.0, 0).op.kind(), CallKind::PointToPoint);
        assert_eq!(
            MpiOp::Collective {
                kind: CollectiveKind::Allreduce,
                comm: CommId::WORLD
            }
            .kind(),
            CallKind::Collective
        );
        assert_eq!(
            MpiOp::OneSided {
                kind: OneSidedKind::Get
            }
            .kind(),
            CallKind::OneSided
        );
        assert_eq!(MpiOp::Wait { request: ReqId(0) }.kind(), CallKind::Progress);
        assert_eq!(MpiOp::Waitall { nreqs: 4 }.kind(), CallKind::Progress);
    }

    #[test]
    fn mpi_names_are_wire_format() {
        assert_eq!(isend(0.0, 0).op.mpi_name(), "MPI_Isend");
        assert_eq!(
            MpiOp::Collective {
                kind: CollectiveKind::Gatherv,
                comm: CommId::WORLD
            }
            .mpi_name(),
            "MPI_Gatherv"
        );
    }

    #[test]
    fn merged_ops_sorts_by_time_then_rank() {
        let trace = AppTrace {
            name: "t".into(),
            ranks: vec![
                RankTrace {
                    rank: Rank(0),
                    ops: vec![isend(2.0, 1), isend(3.0, 1)],
                },
                RankTrace {
                    rank: Rank(1),
                    ops: vec![isend(1.0, 0), isend(2.0, 0)],
                },
            ],
        };
        let merged = trace.merged_ops();
        let times: Vec<f64> = merged.iter().map(|(_, op)| op.time).collect();
        assert_eq!(times, vec![1.0, 2.0, 2.0, 3.0]);
        // Tie at t=2.0 broken by rank.
        assert_eq!(merged[1].0, Rank(0));
        assert_eq!(merged[2].0, Rank(1));
    }

    #[test]
    fn totals_count_all_ranks() {
        let trace = AppTrace {
            name: "t".into(),
            ranks: vec![
                RankTrace {
                    rank: Rank(0),
                    ops: vec![isend(0.0, 1)],
                },
                RankTrace {
                    rank: Rank(1),
                    ops: vec![isend(0.0, 0), isend(1.0, 0)],
                },
            ],
        };
        assert_eq!(trace.processes(), 2);
        assert_eq!(trace.total_ops(), 3);
    }
}
