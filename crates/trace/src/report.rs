//! Report formatting: the rows behind Figs. 6 and 7, plus JSON dumps for
//! downstream plotting (the role of the paper's analysis notebook).

use crate::replay::AppReport;
use serde::Serialize;

/// One Fig. 6 row: per-application call-type percentages.
pub fn fig6_row(report: &AppReport) -> String {
    format!(
        "{:<18} {:>6} procs | p2p {:>6.1}% | collectives {:>6.1}% | one-sided {:>6.1}%",
        report.name,
        report.processes,
        100.0 * report.call_dist.p2p_fraction(),
        100.0 * report.call_dist.collective_fraction(),
        100.0 * report.call_dist.one_sided_fraction(),
    )
}

/// One Fig. 7 cell: queue depth of an application at one bin count.
pub fn fig7_cell(report: &AppReport) -> String {
    format!(
        "{:<18} bins={:<4} mean depth {:>7.3} | max depth {:>5}",
        report.name, report.bins, report.mean_queue_depth, report.max_queue_depth
    )
}

/// The Fig. 7 summary line: average queue depth across applications for a
/// given bin count (the red line of the figure).
pub fn fig7_average(reports: &[AppReport]) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(|r| r.mean_queue_depth).sum::<f64>() / reports.len() as f64
}

/// Serializes any report set to pretty JSON (for EXPERIMENTS.md provenance
/// and external plotting).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("reports are serializable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{CallDistribution, TagUsage};
    use mpi_matching::MatchStats;

    fn report(name: &str, bins: usize, mean: f64, max: u64) -> AppReport {
        AppReport {
            name: name.into(),
            processes: 64,
            bins,
            call_dist: CallDistribution {
                p2p: 75,
                collective: 25,
                one_sided: 0,
                progress: 10,
            },
            match_stats: MatchStats::new(),
            mean_queue_depth: mean,
            max_queue_depth: max,
            avg_empty_bin_fraction: 0.9,
            tag_usage: TagUsage::default(),
            final_prq: 0,
            final_umq: 0,
            datapoints: 10,
        }
    }

    #[test]
    fn fig6_row_shows_percentages() {
        let row = fig6_row(&report("LULESH", 1, 0.0, 0));
        assert!(row.contains("LULESH"));
        assert!(row.contains("75.0%"));
        assert!(row.contains("25.0%"));
        assert!(row.contains("0.0%"));
    }

    #[test]
    fn fig7_cell_shows_depths() {
        let cell = fig7_cell(&report("SNAP", 32, 0.8, 3));
        assert!(cell.contains("bins=32"));
        assert!(cell.contains("0.800"));
        assert!(cell.contains("3"));
    }

    #[test]
    fn fig7_average_is_the_mean_over_apps() {
        let reports = vec![report("a", 1, 4.0, 9), report("b", 1, 12.0, 30)];
        assert!((fig7_average(&reports) - 8.0).abs() < 1e-12);
        assert_eq!(fig7_average(&[]), 0.0);
    }

    #[test]
    fn json_dump_is_valid() {
        let r = report("AMG", 128, 0.3, 2);
        let json = to_json(&r);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["name"], "AMG");
        assert_eq!(parsed["bins"], 128);
    }
}
