//! Property tests for the trace ingestion surfaces: the DUMPI-text parser
//! and the binary cache must tolerate arbitrary input (errors, never
//! panics) and round-trip every representable trace losslessly.

use otm_base::envelope::{SourceSel, TagSel};
use otm_base::{CommId, Rank, Tag};
use otm_trace::model::{AppTrace, CollectiveKind, MpiOp, OneSidedKind, RankTrace, ReqId, TimedOp};
use otm_trace::{cache, dumpi};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = MpiOp> {
    let rank = (0u32..64).prop_map(Rank);
    let tag = (0u32..1000).prop_map(Tag);
    let comm = (0u16..4).prop_map(CommId);
    let count = 0u64..1_000_000;
    let req = (0u32..1000).prop_map(ReqId);
    let src_sel =
        prop_oneof![3 => rank.clone().prop_map(SourceSel::Rank), 1 => Just(SourceSel::Any)];
    let tag_sel = prop_oneof![3 => tag.clone().prop_map(TagSel::Tag), 1 => Just(TagSel::Any)];
    let collective = prop_oneof![
        Just(CollectiveKind::Barrier),
        Just(CollectiveKind::Bcast),
        Just(CollectiveKind::Reduce),
        Just(CollectiveKind::Allreduce),
        Just(CollectiveKind::Gather),
        Just(CollectiveKind::Gatherv),
        Just(CollectiveKind::Allgather),
        Just(CollectiveKind::Alltoall),
        Just(CollectiveKind::Alltoallv),
        Just(CollectiveKind::Scan),
    ];
    let one_sided = prop_oneof![
        Just(OneSidedKind::Put),
        Just(OneSidedKind::Get),
        Just(OneSidedKind::Accumulate),
    ];
    prop_oneof![
        (
            rank.clone(),
            tag.clone(),
            comm.clone(),
            count.clone(),
            req.clone()
        )
            .prop_map(|(dest, tag, comm, count, request)| MpiOp::Isend {
                dest,
                tag,
                comm,
                count,
                request
            }),
        (
            src_sel.clone(),
            tag_sel.clone(),
            comm.clone(),
            count.clone(),
            req.clone()
        )
            .prop_map(|(src, tag, comm, count, request)| MpiOp::Irecv {
                src,
                tag,
                comm,
                count,
                request
            }),
        (rank, tag, comm.clone(), count.clone()).prop_map(|(dest, tag, comm, count)| MpiOp::Send {
            dest,
            tag,
            comm,
            count
        }),
        (src_sel, tag_sel, comm.clone(), count).prop_map(|(src, tag, comm, count)| MpiOp::Recv {
            src,
            tag,
            comm,
            count
        }),
        req.prop_map(|request| MpiOp::Wait { request }),
        (0u32..64).prop_map(|nreqs| MpiOp::Waitall { nreqs }),
        (collective, comm).prop_map(|(kind, comm)| MpiOp::Collective { kind, comm }),
        one_sided.prop_map(|kind| MpiOp::OneSided { kind }),
    ]
}

fn trace_strategy() -> impl Strategy<Value = AppTrace> {
    prop::collection::vec(
        prop::collection::vec((0.0f64..1e6, op_strategy()), 0..40),
        1..6,
    )
    .prop_map(|ranks| AppTrace {
        name: "prop".into(),
        ranks: ranks
            .into_iter()
            .enumerate()
            .map(|(i, ops)| RankTrace {
                rank: Rank(i as u32),
                ops: ops
                    .into_iter()
                    .map(|(time, op)| TimedOp { time, op })
                    .collect(),
            })
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary text never panics the parser.
    #[test]
    fn parser_never_panics_on_garbage(text in "\\PC{0,400}") {
        let _ = dumpi::parse_rank_text(&text);
    }

    /// Structured-looking garbage never panics either.
    #[test]
    fn parser_never_panics_on_mpi_shaped_garbage(
        name in "[A-Za-z_]{1,12}",
        time in "[0-9eE+.-]{1,12}",
        body in "(int [a-z]{1,6}=[0-9-]{1,6}\n){0,5}",
    ) {
        let text = format!("MPI_{name} entering at walltime {time}\n{body}MPI_{name} returning at walltime {time}\n");
        let _ = dumpi::parse_rank_text(&text);
    }

    /// Every representable trace survives text round-tripping.
    #[test]
    fn text_round_trip_is_lossless(trace in trace_strategy()) {
        for rank in &trace.ranks {
            let text = dumpi::write_rank_text(&rank.ops);
            let parsed = dumpi::parse_rank_text(&text).expect("writer output parses");
            prop_assert_eq!(&parsed.ops, &rank.ops);
            prop_assert_eq!(parsed.skipped_calls, 0);
        }
    }

    /// Every representable trace survives binary round-tripping.
    #[test]
    fn cache_round_trip_is_lossless(trace in trace_strategy()) {
        let mut buf = Vec::new();
        cache::write_trace(&trace, &mut buf).expect("write");
        let back = cache::read_trace(buf.as_slice()).expect("read");
        prop_assert_eq!(back, trace);
    }

    /// Truncating a valid cache anywhere yields an error, never a panic or
    /// a silently wrong trace.
    #[test]
    fn truncated_cache_errors_cleanly(trace in trace_strategy(), frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        cache::write_trace(&trace, &mut buf).expect("write");
        let cut = ((buf.len() as f64) * frac) as usize;
        if cut < buf.len() {
            buf.truncate(cut);
            prop_assert!(cache::read_trace(buf.as_slice()).is_err());
        }
    }

    /// Flipping a byte in the payload area either errors or produces *a*
    /// trace — never a panic.
    #[test]
    fn corrupted_cache_never_panics(trace in trace_strategy(), pos in 0usize..4096, val in 0u8..=255) {
        let mut buf = Vec::new();
        cache::write_trace(&trace, &mut buf).expect("write");
        if !buf.is_empty() {
            let i = pos % buf.len();
            buf[i] = val;
            let _ = cache::read_trace(buf.as_slice());
        }
    }
}
